// Package distsim extends the single-GPU simulation to data-parallel
// multi-GPU training — the §3.4 dimension the paper lists as a natural
// fit for Astra's measurement-driven adaptation ("the choice of ideal
// degree of parallelism ... could be taken in an automated manner with
// runtime measurement and adaptation", §6.7).
//
// The model is synchronous data parallelism: each of N workers runs the
// per-device mini-batch (batch/N rows) on its own simulated GPU, and the
// gradients are combined with a ring all-reduce over the interconnect.
// The exchange is simulated at the event level by the custom-wirer
// (wire.CommConfig): gradients pack into buckets in dispatch order, each
// bucket's 2·(n−1) ring steps are communication kernels on a per-worker
// comm stream gated by the readiness event of the bucket's last gradient,
// and the cluster step is the slowest worker. Bucket size and comm-stream
// placement are adaptive variables the explorer tunes online per
// mini-batch, like any other schedule choice; the closed-form
// RingAllReduceUs formula survives only as a cross-check baseline for the
// serialized single-bucket regime.
package distsim

import (
	"fmt"
	"sort"
	"strconv"

	"astra/internal/adapt"
	"astra/internal/enumerate"
	"astra/internal/gpusim"
	"astra/internal/models"
	"astra/internal/wire"
)

// Interconnect models the gradient-exchange fabric.
type Interconnect struct {
	Name string
	// BytesPerUs is the per-link bandwidth (both directions combined).
	BytesPerUs float64
	// LatencyUs is the per-hop latency of one ring step.
	LatencyUs float64
}

// PCIe returns a PCIe-3.0-x16 peer-to-peer fabric (the paper-era default
// for multi-GPU boxes without NVLink).
func PCIe() Interconnect { return Interconnect{Name: "pcie3", BytesPerUs: 11000, LatencyUs: 8} }

// NVLink returns a first-generation NVLink fabric.
func NVLink() Interconnect { return Interconnect{Name: "nvlink1", BytesPerUs: 38000, LatencyUs: 3} }

// Fabrics returns the built-in interconnects, the sweep set of the
// multi-GPU experiments.
func Fabrics() []Interconnect { return []Interconnect{PCIe(), NVLink()} }

// FabricByName resolves an interconnect by its Name field.
func FabricByName(name string) (Interconnect, bool) {
	for _, ic := range Fabrics() {
		if ic.Name == name {
			return ic, true
		}
	}
	return Interconnect{}, false
}

// RingAllReduceUs returns the time to all-reduce `bytes` of gradients over
// n workers with the classic two-phase ring: 2·(n−1) steps, each moving
// bytes/n per link. This is the analytic cross-check baseline: the
// event-level simulation of a single bucket serialized on the main stream
// must converge to it (modulo per-kernel setup cost).
func (ic Interconnect) RingAllReduceUs(bytes int64, n int) float64 {
	if n <= 1 {
		return 0
	}
	steps := 2 * (n - 1)
	perStep := float64(bytes) / float64(n) / ic.BytesPerUs
	return float64(steps) * (perStep + ic.LatencyUs)
}

// Schedule is one fixed communication schedule: a bucket-cap label from
// enumerate.CommBucketLabels ("256", "1024", ..., "all") and a placement
// from enumerate.CommPlacementLabels ("comm" or "main").
type Schedule struct {
	Bucket    string
	Placement string
}

// BulkSync is the bulk-synchronous baseline: every gradient in one bucket,
// exchanged on the main stream strictly after compute.
func BulkSync() Schedule { return Schedule{Bucket: "all", Placement: "main"} }

// Schedules enumerates every fixed communication schedule for a gradient
// payload — exactly the space the online explorer searches, so exhaustive
// sweeps and explored runs are comparable.
func Schedules(gradBytes int64) []Schedule {
	var out []Schedule
	for _, b := range enumerate.CommBucketLabels(gradBytes) {
		for _, p := range enumerate.CommPlacementLabels {
			out = append(out, Schedule{Bucket: b, Placement: p})
		}
	}
	return out
}

// bucketKB converts a bucket label to the CommConfig cap (0 = single
// bucket).
func bucketKB(label string) (int, error) {
	if label == "" || label == "all" {
		return 0, nil
	}
	kb, err := strconv.Atoi(label)
	if err != nil || kb <= 0 {
		return 0, fmt.Errorf("distsim: bad bucket label %q", label)
	}
	return kb, nil
}

// Result reports one data-parallel configuration.
type Result struct {
	Workers int
	// PerDeviceUs is the compute-only time of one worker's wired mini-batch
	// share (same frozen schedule, communication disabled).
	PerDeviceUs float64
	// AllReduceUs is the analytic ring formula for the full payload — the
	// cross-check baseline, not part of the measured step.
	AllReduceUs float64
	// StepUs is the measured event-level cluster step: the slowest worker's
	// batch, gradient exchange included (overlapped or not, as scheduled).
	StepUs float64
	// CommUs is the measured link-busy time of the exchange; CommSpanUs the
	// interval from the first comm kernel's start to the last one's end.
	CommUs     float64
	CommSpanUs float64
	// ThroughputRows is global rows per millisecond.
	ThroughputRows float64
	// Trials counts exploration mini-batches spent (0 for fixed schedules).
	Trials int
	// Bucket and Placement are the communication schedule the step ran
	// with — the explorer's frozen choice, or the fixed one.
	Bucket    string
	Placement string
	// Bindings lists every frozen adaptive variable as "id=label", sorted —
	// the full wired configuration, for asserting two explorations froze
	// identically (e.g. that cost-model pruning never changed the outcome).
	Bindings []string
	// Prior reports cost-model prior quality when the cluster ran with one
	// attached (zero otherwise), and PrunedChoices lists every "var=label"
	// the prior pruned — the audit trail proving no reference winner was
	// ever excluded from measurement.
	Prior         adapt.PriorStats
	PrunedChoices []string
}

// Cluster runs Astra-wired data-parallel steps of a model across worker
// counts.
type Cluster struct {
	Interconnect Interconnect
	// Preset is the Astra adaptation level each worker wires with.
	Preset enumerate.Preset
	// PerOpCPUUs matches the single-GPU sessions.
	PerOpCPUUs float64
	// Seed offsets the simulated devices' RNG (worker ranks derive from it).
	Seed uint64
	// Prior optionally attaches a cost-model prior (internal/costmodel) to
	// every session the cluster runs: exploration is re-ranked and pruned
	// by predicted cost, and measurements train the model in return.
	Prior adapt.Prior
}

func (c *Cluster) preset() enumerate.Preset {
	if c.Preset == "" {
		return enumerate.PresetFK
	}
	return c.Preset
}

func (c *Cluster) perOp() float64 {
	if c.PerOpCPUUs == 0 {
		return 2
	}
	return c.PerOpCPUUs
}

// build compiles the per-device replica for one worker count.
func (c *Cluster) build(name string, globalBatch, n int) (*models.Model, error) {
	if n <= 0 {
		return nil, fmt.Errorf("distsim: worker count %d", n)
	}
	if globalBatch%n != 0 {
		return nil, fmt.Errorf("distsim: batch %d not divisible by %d workers", globalBatch, n)
	}
	build, ok := models.Get(name)
	if !ok {
		return nil, fmt.Errorf("distsim: unknown model %q", name)
	}
	return build(models.DefaultConfig(name, globalBatch/n)), nil
}

// session assembles a multi-worker wired session. adaptComm turns the
// bucket/placement choices into explored variables; otherwise sched fixes
// them.
func (c *Cluster) session(m *models.Model, n int, adaptComm bool, sched Schedule) (*wire.Session, error) {
	opts := enumerate.PresetOptions(c.preset())
	opts.CommAdapt = adaptComm
	opts.Workers = n
	comm := wire.CommConfig{
		Workers:    n,
		BytesPerUs: c.Interconnect.BytesPerUs,
		LatencyUs:  c.Interconnect.LatencyUs,
		Fabric:     c.Interconnect.Name,
	}
	if !adaptComm {
		kb, err := bucketKB(sched.Bucket)
		if err != nil {
			return nil, err
		}
		comm.DefaultBucketKB = kb
		comm.DefaultPlacement = sched.Placement
	}
	dev := gpusim.P100()
	dev.Seed += c.Seed
	return wire.NewSession(m, wire.SessionConfig{
		Device:  dev,
		Options: opts,
		Runner:  wire.RunnerConfig{PerOpCPUUs: c.perOp()},
		Comm:    comm,
		Prior:   c.Prior,
	}), nil
}

// run explores (when the plan has adaptive variables), times one wired
// cluster step, and measures the compute-only baseline of the same frozen
// schedule with communication disabled.
func (c *Cluster) run(m *models.Model, globalBatch, n int, adaptComm bool, sched Schedule) (Result, error) {
	s, err := c.session(m, n, adaptComm, sched)
	if err != nil {
		return Result{}, err
	}
	s.Explore()
	if err := s.Err(); err != nil {
		return Result{}, fmt.Errorf("distsim: exploration: %w", err)
	}
	br := s.Step()
	res := Result{
		Workers:        n,
		AllReduceUs:    c.Interconnect.RingAllReduceUs(s.Plan.GradBytes(), n),
		StepUs:         br.TotalUs,
		CommUs:         br.CommUs,
		CommSpanUs:     br.CommSpanUs,
		ThroughputRows: float64(globalBatch) / (br.TotalUs / 1000),
		Trials:         s.Trials,
		Bucket:         sched.Bucket,
		Placement:      sched.Placement,
	}
	if v := s.Plan.CommBucketVar; v != nil {
		res.Bucket = v.CurrentLabel()
	}
	if v := s.Plan.CommPlaceVar; v != nil {
		res.Placement = v.CurrentLabel()
	}
	if s.Exp != nil {
		res.Prior = s.Exp.PriorStats()
		res.PrunedChoices = s.Exp.PrunedChoices()
		for _, v := range s.Exp.Vars() {
			res.Bindings = append(res.Bindings, v.ID+"="+v.CurrentLabel())
		}
		sort.Strings(res.Bindings)
	}
	if n == 1 {
		res.Bucket, res.Placement = "", ""
		res.PerDeviceUs = br.TotalUs
		return res, nil
	}
	// Compute-only reference: same plan, same frozen bindings, comm off.
	// One wired batch on a fresh device — no re-exploration needed.
	dev := gpusim.P100()
	dev.Seed += c.Seed
	solo := wire.NewRunner(s.Plan, gpusim.NewDevice(dev), wire.RunnerConfig{
		PerOpCPUUs: c.perOp(),
		Profile:    true,
	})
	res.PerDeviceUs = solo.RunBatch(nil, nil).TotalUs
	return res, nil
}

// Step explores and times one data-parallel configuration: the global
// batch is split across n workers, each worker custom-wires its own
// (batch/n)-sized replica, and the communication schedule (bucket cap,
// stream placement) is explored online alongside the compute schedule.
func (c *Cluster) Step(name string, globalBatch, n int) (Result, error) {
	m, err := c.build(name, globalBatch, n)
	if err != nil {
		return Result{}, err
	}
	return c.run(m, globalBatch, n, true, Schedule{})
}

// StepFixed times one data-parallel configuration under a fixed
// communication schedule (no comm exploration; the compute schedule still
// explores per the preset).
func (c *Cluster) StepFixed(name string, globalBatch, n int, sched Schedule) (Result, error) {
	m, err := c.build(name, globalBatch, n)
	if err != nil {
		return Result{}, err
	}
	return c.run(m, globalBatch, n, false, sched)
}

// StepBulkSync times the bulk-synchronous baseline: one bucket, exchanged
// on the main stream strictly after compute — what the analytic formula
// models, and what overlap is measured against.
func (c *Cluster) StepBulkSync(name string, globalBatch, n int) (Result, error) {
	return c.StepFixed(name, globalBatch, n, BulkSync())
}

// Exhaustive measures every fixed communication schedule for the
// configuration and returns the per-schedule results plus the index of the
// fastest — the offline optimum the online explorer is judged against.
func (c *Cluster) Exhaustive(name string, globalBatch, n int) ([]Result, int, error) {
	m, err := c.build(name, globalBatch, n)
	if err != nil {
		return nil, -1, err
	}
	plan := enumerate.Enumerate(m.G, enumerate.PresetOptions(c.preset()))
	var out []Result
	best := -1
	for _, sched := range Schedules(plan.GradBytes()) {
		mm, err := c.build(name, globalBatch, n)
		if err != nil {
			return nil, -1, err
		}
		r, err := c.run(mm, globalBatch, n, false, sched)
		if err != nil {
			return nil, -1, err
		}
		out = append(out, r)
		if best < 0 || r.StepUs < out[best].StepUs {
			best = len(out) - 1
		}
	}
	return out, best, nil
}

// BestWorkers measures every candidate worker count (Astra-style: run and
// measure rather than model) and returns the per-count results plus the
// index of the configuration with the highest throughput.
func (c *Cluster) BestWorkers(name string, globalBatch int, candidates []int) ([]Result, int, error) {
	var out []Result
	best := -1
	for _, n := range candidates {
		r, err := c.Step(name, globalBatch, n)
		if err != nil {
			return nil, -1, err
		}
		out = append(out, r)
		if best < 0 || r.ThroughputRows > out[best].ThroughputRows {
			best = len(out) - 1
		}
	}
	return out, best, nil
}
