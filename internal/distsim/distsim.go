// Package distsim extends the single-GPU simulation to data-parallel
// multi-GPU training — the §3.4 dimension the paper lists as a natural
// fit for Astra's measurement-driven adaptation ("the choice of ideal
// degree of parallelism ... could be taken in an automated manner with
// runtime measurement and adaptation", §6.7).
//
// The model is synchronous data parallelism: each of N workers runs the
// per-device mini-batch (batch/N rows) on its own simulated GPU, then the
// gradients are combined with a ring all-reduce over the interconnect.
// Scaling a recurrent model is a genuine trade-off: smaller per-device
// batches make the (already latency-bound) GEMMs even less efficient,
// while the all-reduce adds a communication term that grows with the
// parameter count — so the best worker count depends on the model, the
// batch size and the link bandwidth, and is exactly the kind of choice a
// static cost model gets wrong.
package distsim

import (
	"fmt"

	"astra/internal/enumerate"
	"astra/internal/gpusim"
	"astra/internal/models"
	"astra/internal/wire"
)

// Interconnect models the gradient-exchange fabric.
type Interconnect struct {
	Name string
	// BytesPerUs is the per-link bandwidth (both directions combined).
	BytesPerUs float64
	// LatencyUs is the per-hop latency of one ring step.
	LatencyUs float64
}

// PCIe returns a PCIe-3.0-x16 peer-to-peer fabric (the paper-era default
// for multi-GPU boxes without NVLink).
func PCIe() Interconnect { return Interconnect{Name: "pcie3", BytesPerUs: 11000, LatencyUs: 8} }

// NVLink returns a first-generation NVLink fabric.
func NVLink() Interconnect { return Interconnect{Name: "nvlink1", BytesPerUs: 38000, LatencyUs: 3} }

// RingAllReduceUs returns the time to all-reduce `bytes` of gradients over
// n workers with the classic two-phase ring: 2·(n−1) steps, each moving
// bytes/n per link.
func (ic Interconnect) RingAllReduceUs(bytes int64, n int) float64 {
	if n <= 1 {
		return 0
	}
	steps := 2 * (n - 1)
	perStep := float64(bytes) / float64(n) / ic.BytesPerUs
	return float64(steps) * (perStep + ic.LatencyUs)
}

// Result reports one data-parallel configuration.
type Result struct {
	Workers        int
	PerDeviceUs    float64 // compute time of one worker's mini-batch share
	AllReduceUs    float64 // gradient exchange time
	StepUs         float64 // compute + exchange (bulk-synchronous)
	ThroughputRows float64 // global rows per millisecond
}

// Cluster runs Astra-wired data-parallel steps of a model across worker
// counts.
type Cluster struct {
	Interconnect Interconnect
	// Preset is the Astra adaptation level each worker wires with.
	Preset enumerate.Preset
	// PerOpCPUUs matches the single-GPU sessions.
	PerOpCPUUs float64
}

// gradientBytes sums the model's parameter sizes (the all-reduce payload).
func gradientBytes(m *models.Model) int64 {
	var b int64
	for _, p := range m.G.Params {
		b += int64(p.Shape.NumElements()) * 8
	}
	return b
}

// Step explores and times one data-parallel configuration: the global
// batch is split across n workers, each worker custom-wires its own
// (batch/n)-sized replica, and the step time is the slowest worker plus
// the ring all-reduce. Identical replicas mean one simulated worker
// suffices (they are deterministic).
func (c *Cluster) Step(name string, globalBatch, n int) (Result, error) {
	if n <= 0 {
		return Result{}, fmt.Errorf("distsim: worker count %d", n)
	}
	if globalBatch%n != 0 {
		return Result{}, fmt.Errorf("distsim: batch %d not divisible by %d workers", globalBatch, n)
	}
	build, ok := models.Get(name)
	if !ok {
		return Result{}, fmt.Errorf("distsim: unknown model %q", name)
	}
	cfg := models.DefaultConfig(name, globalBatch/n)
	m := build(cfg)
	preset := c.Preset
	if preset == "" {
		preset = enumerate.PresetFK
	}
	perOp := c.PerOpCPUUs
	if perOp == 0 {
		perOp = 2
	}
	s := wire.NewSession(m, wire.SessionConfig{
		Device:  gpusim.P100(),
		Options: enumerate.PresetOptions(preset),
		Runner:  wire.RunnerConfig{PerOpCPUUs: perOp},
	})
	s.Explore()
	compute := s.WiredTimeUs()
	comm := c.Interconnect.RingAllReduceUs(gradientBytes(m), n)
	step := compute + comm
	return Result{
		Workers:        n,
		PerDeviceUs:    compute,
		AllReduceUs:    comm,
		StepUs:         step,
		ThroughputRows: float64(globalBatch) / (step / 1000),
	}, nil
}

// BestWorkers measures every candidate worker count (Astra-style: run and
// measure rather than model) and returns the per-count results plus the
// index of the configuration with the highest throughput.
func (c *Cluster) BestWorkers(name string, globalBatch int, candidates []int) ([]Result, int, error) {
	var out []Result
	best := -1
	for _, n := range candidates {
		r, err := c.Step(name, globalBatch, n)
		if err != nil {
			return nil, -1, err
		}
		out = append(out, r)
		if best < 0 || r.ThroughputRows > out[best].ThroughputRows {
			best = len(out) - 1
		}
	}
	return out, best, nil
}
