package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMapPreservesOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		out, err := Map(workers, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	out, err := Map[int](4, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || out != nil {
		t.Fatalf("empty: %v %v", out, err)
	}
	one, err := Map(4, 1, func(i int) (int, error) { return 7, nil })
	if err != nil || len(one) != 1 || one[0] != 7 {
		t.Fatalf("single: %v %v", one, err)
	}
}

// TestMapErrorDeterministic: the returned error must be the lowest-index
// failure regardless of completion order.
func TestMapErrorDeterministic(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for trial := 0; trial < 20; trial++ {
		_, err := Map(8, 50, func(i int) (int, error) {
			switch i {
			case 3:
				return 0, errLow
			case 40:
				return 0, errHigh
			}
			return i, nil
		})
		if err != errLow {
			t.Fatalf("trial %d: err = %v, want lowest-index error", trial, err)
		}
	}
}

// TestMapRunsAllTasksDespiteError: tasks are independent; a failure must
// not suppress later tasks (side effects must match the serial run).
func TestMapRunsAllTasksDespiteError(t *testing.T) {
	var ran atomic.Int64
	_, err := Map(4, 32, func(i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, errors.New("boom")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("error lost")
	}
	if ran.Load() != 32 {
		t.Fatalf("ran %d of 32 tasks", ran.Load())
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	const workers = 3
	var inFlight, peak atomic.Int64
	var mu sync.Mutex
	_, err := Map(workers, 64, func(i int) (int, error) {
		in := inFlight.Add(1)
		mu.Lock()
		if in > peak.Load() {
			peak.Store(in)
		}
		mu.Unlock()
		defer inFlight.Add(-1)
		runtime.Gosched()
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent tasks, bound is %d", p, workers)
	}
}

func TestMapPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic swallowed")
		}
		// Deterministic: the lowest-index panic is the one re-raised.
		if s := fmt.Sprint(r); !strings.Contains(s, "task 2 panicked: kaboom") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	Map(4, 16, func(i int) (int, error) {
		if i == 2 || i == 9 {
			panic("kaboom")
		}
		return i, nil
	})
}

func TestWorkersResolution(t *testing.T) {
	if w := Workers(0, 1000); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", w)
	}
	if w := Workers(8, 3); w != 3 {
		t.Fatalf("Workers(8, 3) = %d, want 3 (capped at n)", w)
	}
	if w := Workers(-1, 0); w != 1 {
		t.Fatalf("Workers(-1, 0) = %d, want 1", w)
	}
}

func TestSeedForDecorrelated(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		s := SeedFor(1, i)
		if s == 0 {
			t.Fatalf("SeedFor(1, %d) = 0", i)
		}
		if seen[s] {
			t.Fatalf("SeedFor(1, %d) collides", i)
		}
		seen[s] = true
	}
	if SeedFor(1, 0) == SeedFor(2, 0) {
		t.Fatal("base seed ignored")
	}
	if SeedFor(1, 5) != SeedFor(1, 5) {
		t.Fatal("SeedFor not a pure function")
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	if err := ForEach(4, 10, func(i int) error { sum.Add(int64(i)); return nil }); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 45 {
		t.Fatalf("sum = %d", sum.Load())
	}
}

func TestStatsAccumulate(t *testing.T) {
	before := Stats().Tasks
	Map(2, 8, func(i int) (int, error) { return i, nil })
	s := Stats()
	if s.Tasks-before != 8 {
		t.Fatalf("tasks delta = %d, want 8", s.Tasks-before)
	}
	if s.MaxInFlight < 1 {
		t.Fatalf("max in flight = %d", s.MaxInFlight)
	}
}
