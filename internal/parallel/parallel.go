// Package parallel is the deterministic parallel execution engine behind
// the exploration/simulation hot path: a bounded, order-preserving worker
// pool for embarrassingly parallel task sets whose merged output must be
// byte-identical to a serial run.
//
// Astra's premise is that exploration is cheap enough to run online; the
// harness regenerates every paper table by running hundreds of independent
// exploration episodes (one wire.Session per cell, each with its own
// simulated device). Those episodes share nothing mutable, so they can fan
// out across OS threads — but the repo's determinism guarantees (same seed
// ⇒ byte-identical tables, traces and profile snapshots) must survive the
// parallelism. Map provides exactly that contract:
//
//   - tasks run on at most min(GOMAXPROCS, n) goroutines (or an explicit
//     worker bound), pulled from an atomic cursor;
//   - results are merged in canonical task order, so the output slice is
//     independent of scheduling;
//   - the returned error is the lowest-index task error, not whichever
//     goroutine lost the race, so error reporting is deterministic too;
//   - a panicking task is re-panicked in the caller (lowest index wins),
//     preserving the crash semantics of the serial loop.
//
// Tasks that need randomness derive it from SeedFor(base, i): decorrelated
// per-task streams that depend only on (base seed, task index), never on
// scheduling.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values below 1 mean "one per
// available CPU" (GOMAXPROCS); the result is never more than n, so small
// task sets do not spawn idle goroutines.
func Workers(requested, n int) int {
	w := requested
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// SeedFor derives a decorrelated per-task seed from a base seed and task
// index using the golden-ratio (Weyl) increment followed by a splitmix64
// finalization round — adjacent indices map to statistically independent
// streams while the mapping stays a pure function of (base, i).
func SeedFor(base uint64, i int) uint64 {
	z := base + (uint64(i)+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 0x9E3779B97F4A7C15
	}
	return z
}

// taskPanic wraps a recovered panic value with its task index so Map can
// re-panic the canonical (lowest-index) one.
type taskPanic struct {
	index int
	value interface{}
}

// Map runs fn(0..n-1) on up to `workers` goroutines (Workers semantics:
// <1 means GOMAXPROCS) and returns the results in task order. The merged
// output, the chosen error and any propagated panic are all independent of
// goroutine scheduling. Every task runs exactly once, even after another
// task has already failed: tasks are independent by contract, and draining
// keeps side effects (progress lines, telemetry counters) identical between
// serial and parallel runs.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	errs := make([]error, n)
	w := Workers(workers, n)
	if w == 1 {
		// Serial fast path: no goroutines, no pool accounting, identical
		// semantics — the byte-identity baseline parallel runs are held to.
		for i := 0; i < n; i++ {
			func() {
				defer taskDone(taskStart())
				var err error
				out[i], err = fn(i)
				errs[i] = err
			}()
		}
		return out, firstError(errs)
	}

	panics := make([]*taskPanic, n)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				runTask(i, fn, out, errs, panics)
			}
		}()
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("parallel: task %d panicked: %v", p.index, p.value))
		}
	}
	return out, firstError(errs)
}

// runTask executes one task, capturing its panic (if any) instead of
// crashing the worker goroutine.
func runTask[T any](i int, fn func(int) (T, error), out []T, errs []error, panics []*taskPanic) {
	defer taskDone(taskStart())
	defer func() {
		if r := recover(); r != nil {
			panics[i] = &taskPanic{index: i, value: r}
		}
	}()
	var err error
	out[i], err = fn(i)
	errs[i] = err
}

// firstError returns the error of the lowest-index failed task.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ForEach is Map for side-effecting tasks with no result value.
func ForEach(workers, n int, fn func(i int) error) error {
	_, err := Map(workers, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// ---- pool telemetry ----

// PoolStats is a snapshot of the package-wide pool counters, exported into
// the obs metrics registry by the CLI tools (parallel.tasks_total,
// parallel.max_in_flight).
type PoolStats struct {
	// Tasks is the total number of tasks executed by Map/ForEach.
	Tasks int64
	// MaxInFlight is the high-water mark of concurrently running tasks.
	MaxInFlight int64
	// InFlight is the number of tasks running right now.
	InFlight int64
}

var (
	statTasks    atomic.Int64
	statInFlight atomic.Int64
	statMaxIn    atomic.Int64
)

func taskStart() int64 {
	statTasks.Add(1)
	in := statInFlight.Add(1)
	for {
		max := statMaxIn.Load()
		if in <= max || statMaxIn.CompareAndSwap(max, in) {
			return in
		}
	}
}

func taskDone(int64) { statInFlight.Add(-1) }

// Stats returns the current pool counters.
func Stats() PoolStats {
	return PoolStats{
		Tasks:       statTasks.Load(),
		MaxInFlight: statMaxIn.Load(),
		InFlight:    statInFlight.Load(),
	}
}
