package gpusim

import (
	"fmt"
	"io"

	"astra/internal/obs"
)

// ExportSpans copies the device's kernel records since the last Reset into
// a session tracer, shifted onto the session clock by offsetUs. Kernels
// land on the device track group (one track per stream); launch-to-start
// gaps become "queued" spans on the launch-queue group, making
// launch-overhead-bound schedules visually obvious. Track names are set
// idempotently, so per-batch exports accumulate into one coherent trace.
func (d *Device) ExportSpans(tr *obs.Tracer, offsetUs float64) {
	d.ExportSpansTo(tr, offsetUs, obs.PIDDevice, obs.PIDQueue, "")
}

// ExportSpansTo is ExportSpans onto explicit device and launch-queue pids,
// with a label prefixed to the track-group names — how each worker of a
// multi-GPU session gets its own pid block (obs.WorkerPID) in one trace.
func (d *Device) ExportSpansTo(tr *obs.Tracer, offsetUs float64, devPID, queuePID int, label string) {
	tr.SetProcessName(devPID, label+"device")
	tr.SetProcessName(queuePID, label+"launch queue")
	for s := range d.streams {
		tr.SetThreadName(devPID, s, fmt.Sprintf("stream %d", s))
		tr.SetThreadName(queuePID, s, fmt.Sprintf("stream %d queue", s))
	}
	for _, r := range d.records {
		tr.AddSpan(devPID, r.Stream, r.Name, "kernel",
			offsetUs+r.StartUs, r.EndUs-r.StartUs, map[string]interface{}{
				"tiles":        r.Tiles,
				"tile_time_us": r.TileTimeUs,
			})
		if gap := r.StartUs - r.LaunchUs; gap > 0 {
			tr.AddSpan(queuePID, r.Stream, r.Name+" (queued)", "queue",
				offsetUs+r.LaunchUs, gap, nil)
		}
	}
}

// Profile copies the device's kernel records since the last Reset into a
// self-contained obs.BatchProfile for the given data-parallel rank — the
// input format of internal/analyze. The samples are deep copies: unlike
// Records, the result stays valid across Reset.
func (d *Device) Profile(worker int) obs.BatchProfile {
	p := obs.BatchProfile{
		Worker:     worker,
		Streams:    len(d.streams),
		CommStream: -1,
		CPUUs:      d.cpuUs,
		EndUs:      d.simUs,
		NumSMs:     d.cfg.NumSMs,
		SMBusyUs:   d.smBusyUs,
		Kernels:    make([]obs.KernelSample, len(d.records)),
	}
	for i, r := range d.records {
		p.Kernels[i] = obs.KernelSample{
			Name:       r.Name,
			Stream:     r.Stream,
			LaunchUs:   r.LaunchUs,
			StartUs:    r.StartUs,
			EndUs:      r.EndUs,
			SMTimeUs:   r.SMTimeUs,
			FreeUs:     r.FreeUs,
			WaitUs:     r.WaitUs,
			WaitStream: r.WaitStream,
			WaitTag:    r.WaitTag,
		}
	}
	return p
}

// WriteChromeTrace exports the device's kernel records since the last
// Reset in the Chrome trace-event object form ({"traceEvents": [...]}),
// with "M"-phase metadata naming the device and launch-queue processes and
// one labeled track per stream, so a simulated schedule opens in Perfetto
// or chrome://tracing exactly like a real GPU profile.
func (d *Device) WriteChromeTrace(w io.Writer) error {
	tr := obs.NewTracer()
	d.ExportSpans(tr, 0)
	if err := tr.WriteChromeTrace(w); err != nil {
		return fmt.Errorf("gpusim: %w", err)
	}
	return nil
}
