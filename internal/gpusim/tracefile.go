package gpusim

import (
	"encoding/json"
	"fmt"
	"io"
)

// TraceEvent is one complete-duration event in the Chrome trace-event
// format (chrome://tracing, Perfetto). The simulator's kernel records map
// onto it directly: pid 0 is the device, tid is the stream.
type TraceEvent struct {
	Name     string  `json:"name"`
	Phase    string  `json:"ph"`
	TimeUs   float64 `json:"ts"`
	DurUs    float64 `json:"dur"`
	PID      int     `json:"pid"`
	TID      int     `json:"tid"`
	Category string  `json:"cat"`
}

// WriteChromeTrace exports the device's kernel records since the last
// Reset as a Chrome trace-event JSON array, so a simulated schedule can be
// inspected in chrome://tracing or Perfetto exactly like a real GPU
// profile. Launch-to-start gaps become "queued" events on a separate
// track, making launch-overhead-bound schedules visually obvious.
func (d *Device) WriteChromeTrace(w io.Writer) error {
	events := make([]TraceEvent, 0, 2*len(d.records))
	for _, r := range d.records {
		events = append(events, TraceEvent{
			Name:     r.Name,
			Phase:    "X",
			TimeUs:   r.StartUs,
			DurUs:    r.EndUs - r.StartUs,
			PID:      0,
			TID:      r.Stream,
			Category: "kernel",
		})
		if gap := r.StartUs - r.LaunchUs; gap > 0 {
			events = append(events, TraceEvent{
				Name:     r.Name + " (queued)",
				Phase:    "X",
				TimeUs:   r.LaunchUs,
				DurUs:    gap,
				PID:      1,
				TID:      r.Stream,
				Category: "queue",
			})
		}
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(events); err != nil {
		return fmt.Errorf("gpusim: trace export: %w", err)
	}
	return nil
}
