package gpusim

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"testing/quick"

	"astra/internal/obs"
)

func testConfig() Config {
	return Config{
		NumSMs:                 56,
		LaunchOverheadUs:       7,
		KernelSetupUs:          1,
		HostTransferLatencyUs:  12,
		HostTransferBytesPerUs: 11000,
		Seed:                   1,
	}
}

func TestSingleKernelWaveQuantization(t *testing.T) {
	// ceil(tiles/SMs) waves × tile time + setup.
	cases := []struct {
		tiles int
		waves float64
	}{
		{1, 1}, {56, 1}, {57, 2}, {112, 2}, {113, 3},
	}
	for _, c := range cases {
		d := NewDevice(testConfig())
		rec := d.Launch(0, KernelSpec{Name: "k", Tiles: c.tiles, TileTimeUs: 10})
		d.Synchronize()
		want := 1 + c.waves*10 // setup + waves
		if got := rec.DurationUs(); math.Abs(got-want) > 1e-9 {
			t.Errorf("tiles=%d: duration %v, want %v", c.tiles, got, want)
		}
	}
}

func TestLaunchOverheadOnCPU(t *testing.T) {
	d := NewDevice(testConfig())
	for i := 0; i < 10; i++ {
		d.Launch(0, KernelSpec{Name: "k", Tiles: 1, TileTimeUs: 1})
	}
	if got := d.CPUTimeUs(); got != 70 {
		t.Fatalf("CPU time %v, want 70 (10 launches x 7us)", got)
	}
}

func TestStreamFIFO(t *testing.T) {
	d := NewDevice(testConfig())
	a := d.Launch(0, KernelSpec{Name: "a", Tiles: 10, TileTimeUs: 10})
	b := d.Launch(0, KernelSpec{Name: "b", Tiles: 10, TileTimeUs: 10})
	d.Synchronize()
	if b.StartUs < a.EndUs {
		t.Fatalf("same-stream kernels overlapped: a ends %v, b starts %v", a.EndUs, b.StartUs)
	}
}

func TestTwoStreamsOverlap(t *testing.T) {
	// Two small kernels on different streams overlap; total device span is
	// far less than the sequential sum.
	d := NewDevice(testConfig())
	d.EnsureStreams(2)
	a := d.Launch(0, KernelSpec{Name: "a", Tiles: 10, TileTimeUs: 100})
	b := d.Launch(1, KernelSpec{Name: "b", Tiles: 10, TileTimeUs: 100})
	d.Synchronize()
	if b.StartUs >= a.EndUs {
		t.Fatalf("streams did not overlap: a [%v,%v], b [%v,%v]", a.StartUs, a.EndUs, b.StartUs, b.EndUs)
	}
	span := math.Max(a.EndUs, b.EndUs) - math.Min(a.StartUs, b.StartUs)
	if span > 150 {
		t.Fatalf("span %v too large for overlapped execution", span)
	}
}

func TestSMContentionSlowsKernels(t *testing.T) {
	// Two multi-wave kernels sharing 56 SMs must each slow down relative
	// to running alone (they split the machine after the first wave).
	alone := NewDevice(testConfig())
	r := alone.Launch(0, KernelSpec{Name: "a", Tiles: 112, TileTimeUs: 10})
	alone.Synchronize()

	shared := NewDevice(testConfig())
	shared.EnsureStreams(2)
	r1 := shared.Launch(0, KernelSpec{Name: "a", Tiles: 112, TileTimeUs: 10})
	r2 := shared.Launch(1, KernelSpec{Name: "b", Tiles: 112, TileTimeUs: 10})
	shared.Synchronize()
	if r1.DurationUs() <= r.DurationUs() && r2.DurationUs() <= r.DurationUs() {
		t.Fatalf("contention had no effect: alone %v, shared %v/%v",
			r.DurationUs(), r1.DurationUs(), r2.DurationUs())
	}
	// But the pair still finishes no later than running them back-to-back.
	seq := NewDevice(testConfig())
	seq.Launch(0, KernelSpec{Name: "a", Tiles: 112, TileTimeUs: 10})
	s2 := seq.Launch(0, KernelSpec{Name: "b", Tiles: 112, TileTimeUs: 10})
	seq.Synchronize()
	parEnd := math.Max(r1.EndUs, r2.EndUs)
	if parEnd > s2.EndUs+1e-9 {
		t.Fatalf("parallel %v worse than sequential %v", parEnd, s2.EndUs)
	}
}

func TestSmallKernelsOnStreamsBeatSequential(t *testing.T) {
	// Underutilizing kernels (tiles << SMs) benefit from streams: four
	// 8-tile kernels on 4 streams run concurrently.
	cfg := testConfig()
	seq := NewDevice(cfg)
	for i := 0; i < 4; i++ {
		seq.Launch(0, KernelSpec{Name: "k", Tiles: 8, TileTimeUs: 50})
	}
	seq.Synchronize()
	seqEnd := seq.Records()[3].EndUs

	par := NewDevice(cfg)
	par.EnsureStreams(4)
	for i := 0; i < 4; i++ {
		par.Launch(i, KernelSpec{Name: "k", Tiles: 8, TileTimeUs: 50})
	}
	par.Synchronize()
	parEnd := 0.0
	for _, r := range par.Records() {
		parEnd = math.Max(parEnd, r.EndUs)
	}
	if parEnd >= seqEnd*0.5 {
		t.Fatalf("4-stream end %v not much better than sequential %v", parEnd, seqEnd)
	}
}

func TestEventsResolveInStreamOrder(t *testing.T) {
	d := NewDevice(testConfig())
	e0 := d.RecordEvent(0)
	k := d.Launch(0, KernelSpec{Name: "k", Tiles: 56, TileTimeUs: 10})
	e1 := d.RecordEvent(0)
	d.Synchronize()
	if !e0.Resolved() || !e1.Resolved() {
		t.Fatal("events unresolved after sync")
	}
	// e0 resolves immediately (empty stream); e1 resolves when the kernel
	// retires, so elapsed covers the launch gap plus the kernel itself —
	// exactly what a cudaEvent pair around an enqueued region measures.
	if got, want := Elapsed(e0, e1), k.EndUs-e0.TimeUs(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("elapsed %v, want %v", got, want)
	}
	if Elapsed(e0, e1) < k.DurationUs() {
		t.Fatal("elapsed shorter than kernel duration")
	}
}

func TestUnresolvedEventPanics(t *testing.T) {
	d := NewDevice(testConfig())
	d.Launch(0, KernelSpec{Name: "k", Tiles: 1, TileTimeUs: 1})
	e := d.RecordEvent(0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic reading unresolved event")
		}
	}()
	_ = e.TimeUs()
}

func TestWaitEventOrdersAcrossStreams(t *testing.T) {
	d := NewDevice(testConfig())
	d.EnsureStreams(2)
	a := d.Launch(0, KernelSpec{Name: "a", Tiles: 56, TileTimeUs: 20})
	e := d.RecordEvent(0)
	d.WaitEvent(1, e)
	b := d.Launch(1, KernelSpec{Name: "b", Tiles: 1, TileTimeUs: 1})
	d.Synchronize()
	if b.StartUs < a.EndUs {
		t.Fatalf("dependent kernel started at %v before producer ended at %v", b.StartUs, a.EndUs)
	}
}

func TestCrossStreamWaitDeadlockDetected(t *testing.T) {
	d := NewDevice(testConfig())
	d.EnsureStreams(2)
	// Stream 1 waits on an event that is recorded on stream 0 *after* a
	// wait on an event recorded on stream 1 — a cycle.
	e1 := d.RecordEvent(1) // resolves immediately, fine
	d.WaitEvent(0, e1)
	// Build an actual cycle: wait on an event that is never recorded
	// because its stream is blocked.
	pending := &Event{}
	d.WaitEvent(0, pending)
	d.Launch(0, KernelSpec{Name: "k", Tiles: 1, TileTimeUs: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	d.Synchronize()
}

func TestDeterminismWithoutAutoboost(t *testing.T) {
	run := func() []float64 {
		d := NewDevice(testConfig())
		d.EnsureStreams(3)
		var out []float64
		for i := 0; i < 30; i++ {
			r := d.Launch(i%3, KernelSpec{Name: "k", Tiles: 5 + i%13, TileTimeUs: 3 + float64(i%7)})
			_ = r
		}
		d.Synchronize()
		for _, r := range d.Records() {
			out = append(out, r.StartUs, r.EndUs)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestAutoboostIntroducesVariance(t *testing.T) {
	cfg := testConfig()
	cfg.Autoboost = true
	cfg.BoostJitter = 0.1
	d := NewDevice(cfg)
	durations := map[float64]bool{}
	for i := 0; i < 20; i++ {
		d.Launch(0, KernelSpec{Name: "k", Tiles: 56, TileTimeUs: 10})
	}
	d.Synchronize()
	for _, r := range d.Records() {
		durations[r.DurationUs()] = true
	}
	if len(durations) < 5 {
		t.Fatalf("autoboost produced only %d distinct durations", len(durations))
	}
	// §7: identical kernels must be repeatable with autoboost off.
	cfg.Autoboost = false
	d2 := NewDevice(cfg)
	for i := 0; i < 20; i++ {
		d2.Launch(0, KernelSpec{Name: "k", Tiles: 56, TileTimeUs: 10})
	}
	d2.Synchronize()
	first := d2.Records()[0].DurationUs()
	for _, r := range d2.Records() {
		if r.DurationUs() != first {
			t.Fatal("pinned clock not repeatable")
		}
	}
}

func TestJitterVariesAcrossBatchesDeterministically(t *testing.T) {
	// The same kernel re-measured in a later batch must see different
	// jitter (multi-sample averaging needs independent noise), yet two
	// devices with the same seed must agree batch for batch.
	cfg := testConfig()
	cfg.Autoboost = true
	cfg.BoostJitter = 0.1
	run := func() []float64 {
		d := NewDevice(cfg)
		var out []float64
		for b := 0; b < 3; b++ {
			d.Reset()
			r := d.Launch(0, KernelSpec{Name: "k", Tiles: 56, TileTimeUs: 10})
			d.Synchronize()
			out = append(out, r.DurationUs())
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("batch %d differs across same-seed runs: %v vs %v", i, a[i], b[i])
		}
	}
	if a[0] == a[1] && a[1] == a[2] {
		t.Fatalf("jitter identical across batches: %v", a)
	}
}

func TestStragglerInjectionDeterministic(t *testing.T) {
	cfg := testConfig()
	cfg.Faults = FaultConfig{StragglerProb: 0.2, StragglerFactor: 4, Seed: 7}
	run := func() (slow int, durations []float64) {
		d := NewDevice(cfg)
		d.Reset()
		for i := 0; i < 50; i++ {
			d.Launch(0, KernelSpec{Name: "k", Tiles: 56, TileTimeUs: 10})
		}
		d.Synchronize()
		for _, r := range d.Records() {
			durations = append(durations, r.DurationUs())
			if r.DurationUs() > 20 { // 4x straggler clearly separated from 1x
				slow++
			}
		}
		return slow, durations
	}
	slowA, dursA := run()
	slowB, dursB := run()
	if slowA == 0 || slowA == 50 {
		t.Fatalf("straggler count %d/50 implausible for p=0.2", slowA)
	}
	if slowA != slowB {
		t.Fatalf("straggler pattern not deterministic: %d vs %d", slowA, slowB)
	}
	for i := range dursA {
		if dursA[i] != dursB[i] {
			t.Fatalf("kernel %d differs across same-seed runs", i)
		}
	}
}

func TestThrottleWindow(t *testing.T) {
	cfg := testConfig()
	cfg.Faults = FaultConfig{ThrottleStartBatch: 3, ThrottleBatches: 2, ThrottleFactor: 1.5}
	d := NewDevice(cfg)
	baseline := 0.0
	for b := 1; b <= 6; b++ {
		d.Reset()
		if want := b; d.Batch() != want {
			t.Fatalf("Batch = %d, want %d", d.Batch(), want)
		}
		r := d.Launch(0, KernelSpec{Name: "k", Tiles: 56, TileTimeUs: 10})
		d.Synchronize()
		inWindow := b >= 3 && b < 5
		if d.Throttled() != inWindow {
			t.Fatalf("batch %d: Throttled = %v", b, d.Throttled())
		}
		if b == 1 {
			baseline = r.DurationUs()
		}
		if inWindow && r.DurationUs() < baseline*1.4 {
			t.Fatalf("batch %d inside window not throttled: %v vs baseline %v", b, r.DurationUs(), baseline)
		}
		if !inWindow && r.DurationUs() != baseline {
			t.Fatalf("batch %d outside window throttled: %v vs baseline %v", b, r.DurationUs(), baseline)
		}
	}
	// Open-ended window: ThrottleBatches <= 0 throttles to session end.
	cfg.Faults = FaultConfig{ThrottleStartBatch: 2, ThrottleFactor: 1.5}
	d2 := NewDevice(cfg)
	d2.Reset() // batch 1
	if d2.Throttled() {
		t.Fatal("throttled before window start")
	}
	for b := 2; b <= 10; b++ {
		d2.Reset()
		if !d2.Throttled() {
			t.Fatalf("open-ended window closed at batch %d", b)
		}
	}
	if !cfg.Faults.Enabled() || (FaultConfig{}).Enabled() {
		t.Fatal("FaultConfig.Enabled wrong")
	}
}

func TestThrottleClassMatchesClassNotPrefix(t *testing.T) {
	// Regression: ThrottleClass used to match by name prefix, so throttling
	// "gemm" also hit any kernel whose *name* merely starts with "gemm" —
	// here "gemmish_x", which classifies as "other". The throttle must hit
	// exactly the named class (obs.KernelClass), nothing else.
	cfg := testConfig()
	cfg.Faults = FaultConfig{ThrottleStartBatch: 1, ThrottleFactor: 2, ThrottleClass: obs.ClassGEMM}
	d := NewDevice(cfg)
	d.Reset()
	hit := d.Launch(0, KernelSpec{Name: "gemm_fwd", Tiles: 56, TileTimeUs: 10})
	miss := d.Launch(0, KernelSpec{Name: "gemmish_x", Tiles: 56, TileTimeUs: 10})
	d.Synchronize()
	if got := hit.DurationUs(); got != 1+20 {
		t.Fatalf("gemm-class kernel not throttled: duration %v, want 21", got)
	}
	if got := miss.DurationUs(); got != 1+10 {
		t.Fatalf("prefix-sharing other-class kernel throttled: duration %v, want 11", got)
	}
	// And the other direction: the class the prefix-shared kernel actually
	// belongs to throttles it, leaving the gemm kernel alone.
	cfg.Faults.ThrottleClass = obs.ClassOther
	d2 := NewDevice(cfg)
	d2.Reset()
	g := d2.Launch(0, KernelSpec{Name: "gemm_fwd", Tiles: 56, TileTimeUs: 10})
	o := d2.Launch(0, KernelSpec{Name: "gemmish_x", Tiles: 56, TileTimeUs: 10})
	d2.Synchronize()
	if g.DurationUs() != 11 || o.DurationUs() != 21 {
		t.Fatalf("class=other: gemm %v (want 11), other %v (want 21)", g.DurationUs(), o.DurationUs())
	}
}

func TestCostOverrideScalesClassDeterministically(t *testing.T) {
	d := NewDevice(testConfig())
	d.SetCostOverride(CostOverride{ClassTimeFactors: map[string]float64{
		obs.ClassGEMM: 0.5,
		obs.ClassEW:   0, // non-positive factors are ignored
	}})
	d.Reset()
	g := d.Launch(0, KernelSpec{Name: "gemm_fwd", Tiles: 56, TileTimeUs: 10})
	e := d.Launch(0, KernelSpec{Name: "ew_add", Tiles: 56, TileTimeUs: 10})
	c := d.Launch(0, KernelSpec{Name: "copyH2D", Tiles: 56, TileTimeUs: 10})
	d.Synchronize()
	if g.DurationUs() != 1+5 {
		t.Fatalf("gemm with 0.5 override: duration %v, want 6", g.DurationUs())
	}
	if e.DurationUs() != 11 || c.DurationUs() != 11 {
		t.Fatalf("unaffected kernels changed: ew %v, copy %v (want 11)", e.DurationUs(), c.DurationUs())
	}
	// Clearing restores baseline.
	d.SetCostOverride(CostOverride{})
	d.Reset()
	g2 := d.Launch(0, KernelSpec{Name: "gemm_fwd", Tiles: 56, TileTimeUs: 10})
	d.Synchronize()
	if g2.DurationUs() != 11 {
		t.Fatalf("override not cleared: duration %v, want 11", g2.DurationUs())
	}
}

func TestResetClearsState(t *testing.T) {
	d := NewDevice(testConfig())
	d.Launch(0, KernelSpec{Name: "k", Tiles: 8, TileTimeUs: 2})
	d.Synchronize()
	d.Reset()
	if d.CPUTimeUs() != 0 || len(d.Records()) != 0 || d.SMBusyUs() != 0 {
		t.Fatal("Reset left residue")
	}
	r := d.Launch(0, KernelSpec{Name: "k", Tiles: 8, TileTimeUs: 2})
	d.Synchronize()
	if r.StartUs > 10 {
		t.Fatalf("post-reset kernel starts at %v", r.StartUs)
	}
}

func TestHostTransferBlocksCPU(t *testing.T) {
	d := NewDevice(testConfig())
	d.Launch(0, KernelSpec{Name: "k", Tiles: 56, TileTimeUs: 100})
	before := d.CPUTimeUs()
	d.HostTransfer(0, 1_100_000) // 1.1MB at 11000 B/us = 100us + 12us latency
	after := d.CPUTimeUs()
	if after-before < 100 {
		t.Fatalf("host transfer advanced CPU by only %v", after-before)
	}
}

func TestSMBusyAccounting(t *testing.T) {
	d := NewDevice(testConfig())
	d.Launch(0, KernelSpec{Name: "k", Tiles: 112, TileTimeUs: 10})
	d.Synchronize()
	if got, want := d.SMBusyUs(), 1120.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("SMBusyUs = %v, want %v", got, want)
	}
}

func TestBadSpecsPanic(t *testing.T) {
	d := NewDevice(testConfig())
	for _, spec := range []KernelSpec{{Tiles: 0, TileTimeUs: 1}, {Tiles: 1, TileTimeUs: 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("accepted bad spec %+v", spec)
				}
			}()
			d.Launch(0, spec)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("accepted bad stream")
			}
		}()
		d.Launch(5, KernelSpec{Tiles: 1, TileTimeUs: 1})
	}()
}

// TestConservationProperty: for random workloads, total SM busy time equals
// the sum of tiles × tile time, and no kernel ends before it starts.
func TestConservationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		d := NewDevice(testConfig())
		d.EnsureStreams(4)
		rng := seed
		next := func(n int) int {
			rng = rng*6364136223846793005 + 1442695040888963407
			return int((rng >> 33) % uint64(n))
		}
		want := 0.0
		for i := 0; i < 25; i++ {
			tiles := 1 + next(130)
			tt := 1 + float64(next(20))
			d.Launch(next(4), KernelSpec{Name: "k", Tiles: tiles, TileTimeUs: tt})
			want += float64(tiles) * tt
		}
		d.Synchronize()
		if math.Abs(d.SMBusyUs()-want) > 1e-6 {
			return false
		}
		for _, r := range d.Records() {
			if r.EndUs < r.StartUs || r.StartUs < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestStreamSerializationProperty: kernels on the same stream never overlap
// regardless of workload.
func TestStreamSerializationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		d := NewDevice(testConfig())
		d.EnsureStreams(3)
		rng := seed
		next := func(n int) int {
			rng = rng*2862933555777941757 + 3037000493
			return int((rng >> 33) % uint64(n))
		}
		for i := 0; i < 20; i++ {
			d.Launch(next(3), KernelSpec{Name: "k", Tiles: 1 + next(80), TileTimeUs: 1 + float64(next(9))})
		}
		d.Synchronize()
		last := map[int]float64{}
		for _, r := range d.Records() {
			if r.StartUs < last[r.Stream]-1e-9 {
				return false
			}
			last[r.Stream] = r.EndUs
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSynchronizeAdvancesCPUToDeviceEnd(t *testing.T) {
	d := NewDevice(testConfig())
	d.Launch(0, KernelSpec{Name: "k", Tiles: 56, TileTimeUs: 1000})
	d.Synchronize()
	if d.CPUTimeUs() < 1000 {
		t.Fatalf("CPU %v did not wait for device", d.CPUTimeUs())
	}
}

func TestChromeTraceExport(t *testing.T) {
	d := NewDevice(testConfig())
	d.EnsureStreams(2)
	d.Launch(0, KernelSpec{Name: "a", Tiles: 8, TileTimeUs: 5})
	d.Launch(1, KernelSpec{Name: "b", Tiles: 8, TileTimeUs: 5})
	d.Synchronize()
	var buf bytes.Buffer
	if err := d.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace obs.ChromeTrace
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if trace.DisplayTimeUnit == "" {
		t.Fatal("no displayTimeUnit")
	}
	kernels := 0
	procNames := map[string]bool{}
	threadNames := map[string]bool{}
	for _, e := range trace.TraceEvents {
		switch {
		case e.Category == "kernel":
			kernels++
			if e.DurUs <= 0 || e.Phase != "X" {
				t.Fatalf("bad event %+v", e)
			}
		case e.Phase == "M" && e.Name == "process_name":
			procNames[e.Args["name"].(string)] = true
		case e.Phase == "M" && e.Name == "thread_name":
			threadNames[e.Args["name"].(string)] = true
		}
	}
	if kernels != 2 {
		t.Fatalf("kernels in trace = %d", kernels)
	}
	// Perfetto track labels: the device/launch-queue processes and one
	// named track per stream.
	for _, want := range []string{"device", "launch queue"} {
		if !procNames[want] {
			t.Fatalf("no process_name metadata for %q (have %v)", want, procNames)
		}
	}
	for _, want := range []string{"stream 0", "stream 1"} {
		if !threadNames[want] {
			t.Fatalf("no thread_name metadata for %q (have %v)", want, threadNames)
		}
	}
}
