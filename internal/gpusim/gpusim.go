// Package gpusim is a deterministic discrete-event simulator of a
// P100-class GPU: the hardware substrate this reproduction substitutes for
// the paper's physical Tesla P100 (see DESIGN.md §1).
//
// The simulator models exactly the hardware properties §7 of the paper
// identifies as the ones Astra depends on, and nothing more:
//
//   - Predictable execution: kernel timing is a pure function of the kernel
//     spec and the concurrency it experiences. With Autoboost off the same
//     schedule always takes the same simulated time; with Autoboost on, a
//     seeded clock jitter perturbs every kernel, which is what forces the
//     paper to pin the clock via nvidia-smi.
//   - Streams: FIFO queues that serialize their own kernels but run in
//     parallel with other streams, synchronized only by events.
//   - Lightweight profiling events: cudaEvent-style markers whose resolved
//     timestamps cost nothing on the critical path.
//   - Launch overhead: every kernel costs a fixed CPU-side dispatch time
//     (the 5–10 µs the paper cites), so fusing small kernels pays off.
//
// Execution on the device is wave-quantized: a kernel is a bag of tiles;
// each tile occupies one SM for the kernel's tile time; concurrently
// runnable kernels share free SMs with a fair (least-allocated-first)
// policy. Tile counts below the SM count leave the machine underutilized,
// which is the single mechanism behind every GPU effect the paper exploits
// (fusion wins, multi-stream wins, and the §3.2 fusion anomaly).
package gpusim

import (
	"fmt"
	"math"
	"slices"

	"astra/internal/obs"
	"astra/internal/tensor"
)

// Config describes the simulated device.
type Config struct {
	// NumSMs is the number of streaming multiprocessors (56 on a P100).
	NumSMs int
	// LaunchOverheadUs is the CPU time consumed by one kernel launch.
	LaunchOverheadUs float64
	// KernelSetupUs is the device-side fixed cost before a kernel's tiles
	// may be scheduled.
	KernelSetupUs float64
	// HostTransferLatencyUs and HostTransferBytesPerUs model the PCIe link
	// used by host<->device copies (the XLA embedding pathology).
	HostTransferLatencyUs  float64
	HostTransferBytesPerUs float64
	// Autoboost enables clock jitter: each kernel's tile time is scaled by
	// a factor drawn uniformly from [1-BoostJitter, 1+BoostJitter]. The
	// jitter stream reseeds per batch (Seed mixed with the batch index), so
	// re-measuring the same configuration in a later batch sees different
	// noise — which is what multi-sample profiling averages away — while
	// the same seed still reproduces the same session bit for bit.
	Autoboost   bool
	BoostJitter float64
	// Seed drives the autoboost jitter stream.
	Seed uint64
	// Faults configures deterministic seeded fault injection (transient
	// straggler kernels and sustained clock-throttle windows); the zero
	// value disables it.
	Faults FaultConfig
}

// FaultConfig injects device-level faults deterministically: the same seed
// and batch sequence reproduce the same faults, so noisy-session tests and
// the drift watchdog are testable run to run.
type FaultConfig struct {
	// StragglerProb is the per-kernel probability of a transient straggler:
	// the kernel's tiles run StragglerFactor (default 3) times slower, the
	// way a single unlucky kernel stalls on a real device.
	StragglerProb   float64
	StragglerFactor float64
	// Seed drives the straggler stream (default Config.Seed). The stream
	// persists across Reset so the straggler pattern differs batch to batch
	// but is identical run to run.
	Seed uint64
	// ThrottleStartBatch (1-based; 0 disables) opens a sustained
	// clock-throttle window: every kernel in batches [start, start+n) runs
	// ThrottleFactor (default 1.3) times slower — the mid-session drift the
	// wired-phase watchdog exists to catch. ThrottleBatches <= 0 keeps the
	// window open for the rest of the session.
	ThrottleStartBatch int
	ThrottleBatches    int
	ThrottleFactor     float64
	// ThrottleClass restricts the throttle window to kernels of exactly
	// this class (obs.KernelClass: "gemm", "ew", "copy", "allreduce",
	// "other" — the same classing the analyzer's blame uses). Empty
	// throttles every kernel. This is the perturbation the analyzer's diff
	// mode is validated against: a class-targeted fault must show up as
	// blame on exactly that class — which is why the match is by class,
	// not name prefix: a prefix like "gemm" would also catch an
	// unrelated "gemmish_*" kernel and smear the attribution.
	ThrottleClass string
}

// Enabled reports whether any fault injection is configured.
func (f FaultConfig) Enabled() bool {
	return f.StragglerProb > 0 || f.ThrottleStartBatch > 0
}

// P100 returns the configuration used throughout the evaluation, standing
// in for the paper's Tesla P100 testbed.
func P100() Config {
	return Config{
		NumSMs:                 56,
		LaunchOverheadUs:       7,
		KernelSetupUs:          1.5,
		HostTransferLatencyUs:  12,
		HostTransferBytesPerUs: 11000, // ~11 GB/s effective PCIe gen3 x16
		BoostJitter:            0.08,
		Seed:                   1,
	}
}

// KernelSpec describes the device-side cost of one kernel launch. Cost
// models live in package kernels; the simulator only executes specs.
type KernelSpec struct {
	Name       string
	Tiles      int
	TileTimeUs float64
	SetupUs    float64 // 0 means use Config.KernelSetupUs
}

// Event is a cudaEvent-style marker. Its timestamp resolves when the
// stream it was recorded on drains past the record point.
type Event struct {
	id       int
	stream   int // stream the event was recorded on
	resolved bool
	timeUs   float64
}

// Stream returns the stream the event was recorded on — the producer side
// of a cross-stream dependency, which the trace analyzer follows when a
// wait on this event turns out to be a kernel's binding constraint.
func (e *Event) Stream() int { return e.stream }

// Resolved reports whether the event's timestamp is known (i.e. the device
// has been synchronized past it).
func (e *Event) Resolved() bool { return e.resolved }

// TimeUs returns the resolved GPU timestamp; it panics if the event has not
// been synchronized, mirroring cudaEventElapsedTime's error on a pending
// event.
func (e *Event) TimeUs() float64 {
	if !e.resolved {
		panic("gpusim: reading unresolved event")
	}
	return e.timeUs
}

// Elapsed returns the elapsed time in µs between two resolved events.
func Elapsed(start, end *Event) float64 { return end.TimeUs() - start.TimeUs() }

// KernelRecord is the simulator's account of one executed kernel, used by
// tests, by the profiler, and by the trace analyzer to attribute time.
//
// StartUs is always max(LaunchUs, FreeUs, WaitUs): a kernel starts the
// moment its launch arrives, its stream drains, and every awaited event has
// resolved — whichever is last. Recording all three operands (exact float
// copies of the simulated clock, never recomputed) lets the analyzer
// identify the binding constraint of every kernel start with zero
// tolerance, which is what makes exact critical-path reconstruction
// possible.
type KernelRecord struct {
	Name       string
	Stream     int
	LaunchUs   float64 // CPU time at launch
	StartUs    float64 // device time the kernel began (setup start)
	EndUs      float64 // device time the last tile finished
	Tiles      int
	TileTimeUs float64
	SMTimeUs   float64 // integral of SMs occupied over time

	// FreeUs is the stream's drain time when the kernel started (the
	// previous kernel's EndUs, 0 for the first on the stream); WaitUs the
	// stream's resolved event-wait horizon, with WaitStream the stream the
	// horizon-setting event was recorded on (-1 when no wait applied) and
	// WaitTag the dispatcher-supplied label of that wait (WaitEventTag).
	FreeUs     float64
	WaitUs     float64
	WaitStream int
	WaitTag    string
}

// DurationUs returns the kernel's device-side duration.
func (k *KernelRecord) DurationUs() float64 { return k.EndUs - k.StartUs }

type itemKind int

const (
	itemKernel itemKind = iota
	itemRecord
	itemWait
)

type item struct {
	kind      itemKind
	arrivalUs float64 // CPU launch time
	kern      *kernel
	event     *Event // record target or wait source
	tag       string // dispatcher label of a wait (WaitEventTag)
}

type kernel struct {
	rec        *KernelRecord
	setupUs    float64
	readyAt    float64 // device time tiles become schedulable
	started    bool
	seq        int // launch order within the batch; total SM-allocation tie-break
	unassigned int // tiles not yet given to an SM group
	inFlight   int // tiles currently executing
	assigned   int // SMs currently held
	jitter     float64
}

type stream struct {
	// queue[head:] is the pending FIFO. Consuming advances head instead of
	// re-slicing from the front, so the backing array survives the batch and
	// the next batch enqueues into already-warm capacity.
	queue     []item
	head      int
	busy      *kernel // FIFO: at most one kernel in flight per stream
	lastDone  float64 // device time the last kernel on this stream finished
	waitUntil float64 // earliest device time the next item may start
	// waitStream/waitTag carry the provenance of the current waitUntil: the
	// stream the horizon-setting event was recorded on and the dispatcher's
	// label for the wait. Copied into each starting kernel's record.
	waitStream int
	waitTag    string
}

func (s *stream) pending() int { return len(s.queue) - s.head }

func (s *stream) peek() item { return s.queue[s.head] }

func (s *stream) advance() {
	s.head++
	if s.head == len(s.queue) {
		s.queue = s.queue[:0]
		s.head = 0
	}
}

func (s *stream) push(it item) { s.queue = append(s.queue, it) }

// Device is the simulated GPU plus the dispatching CPU's timeline.
// CostOverride scales kernel execution time by class — the hook the what-if
// checker uses to re-simulate a "class got N× faster" scenario for ground
// truth. Factors multiply the kernel's tile time (0.5 = twice as fast);
// classes absent from the map, and non-positive factors, are untouched.
// Unlike FaultConfig the override is deterministic, batch-independent, and
// applied to every matching kernel.
type CostOverride struct {
	ClassTimeFactors map[string]float64
}

type Device struct {
	cfg       Config
	override  CostOverride
	cpuUs     float64
	simUs     float64
	freeSMs   int
	streams   []*stream
	running   []*kernel
	batches   batchHeap
	records   []*KernelRecord
	rng       *tensor.RNG
	faultRNG  *tensor.RNG // persists across Reset; drives straggler injection
	batch     int         // 1-based batch counter, advanced by Reset
	eventSeq  int
	launchSeq int     // kernels launched this batch; orders SM allocation ties
	smBusyUs  float64 // integral of busy SMs over device time

	// Free-lists for the per-batch hot-path objects. Pointers handed out
	// (records, events) stay valid until the next Reset, which recycles them
	// for the following batch — the simulator's steady state allocates
	// nothing per launch. Pools hold pointers (not a value arena) so growth
	// via append never invalidates an outstanding pointer.
	recPool   []*KernelRecord
	recUsed   int
	kernPool  []*kernel
	kernUsed  int
	eventPool []*Event
	eventUsed int
	needy     []*kernel // scratch for allocateSMs
	poolReuse int64     // objects served from a free-list (telemetry)
	poolAlloc int64     // objects newly allocated (telemetry)
}

// newRecord hands out a KernelRecord from the device free list.
//
//astra:hotpath
func (d *Device) newRecord() *KernelRecord {
	if d.recUsed < len(d.recPool) {
		r := d.recPool[d.recUsed]
		d.recUsed++
		d.poolReuse++
		*r = KernelRecord{}
		return r
	}
	r := &KernelRecord{} // lint:ok hotpath pool growth, amortized to zero across Reset/reuse
	d.recPool = append(d.recPool, r)
	d.recUsed++
	d.poolAlloc++
	return r
}

// newKernel hands out a kernel from the device free list.
//
//astra:hotpath
func (d *Device) newKernel() *kernel {
	if d.kernUsed < len(d.kernPool) {
		k := d.kernPool[d.kernUsed]
		d.kernUsed++
		d.poolReuse++
		*k = kernel{}
		return k
	}
	k := &kernel{} // lint:ok hotpath pool growth, amortized to zero across Reset/reuse
	d.kernPool = append(d.kernPool, k)
	d.kernUsed++
	d.poolAlloc++
	return k
}

// newEvent hands out an Event from the device free list.
//
//astra:hotpath
func (d *Device) newEvent() *Event {
	if d.eventUsed < len(d.eventPool) {
		e := d.eventPool[d.eventUsed]
		d.eventUsed++
		d.poolReuse++
		*e = Event{}
		return e
	}
	e := &Event{} // lint:ok hotpath pool growth, amortized to zero across Reset/reuse
	d.eventPool = append(d.eventPool, e)
	d.eventUsed++
	d.poolAlloc++
	return e
}

// PoolCounters reports the free-list telemetry: objects served from a pool
// versus freshly allocated since the device was created.
func (d *Device) PoolCounters() (reused, allocated int64) {
	return d.poolReuse, d.poolAlloc
}

// NewDevice creates a device with one stream.
func NewDevice(cfg Config) *Device {
	if cfg.NumSMs <= 0 {
		panic("gpusim: NumSMs must be positive")
	}
	fseed := cfg.Faults.Seed
	if fseed == 0 {
		fseed = cfg.Seed
	}
	d := &Device{
		cfg: cfg, freeSMs: cfg.NumSMs,
		rng:      tensor.NewRNG(cfg.Seed),
		faultRNG: tensor.NewRNG(fseed),
	}
	d.streams = []*stream{{waitStream: -1}}
	return d
}

// Batch returns the 1-based index of the current mini-batch (0 before the
// first Reset). The runner resets the device once per batch, so this is the
// session's batch counter — the clock fault windows are expressed in.
func (d *Device) Batch() int { return d.batch }

// Throttled reports whether the current batch falls inside a configured
// clock-throttle window.
func (d *Device) Throttled() bool {
	f := d.cfg.Faults
	if f.ThrottleStartBatch <= 0 || d.batch < f.ThrottleStartBatch {
		return false
	}
	return f.ThrottleBatches <= 0 || d.batch < f.ThrottleStartBatch+f.ThrottleBatches
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// SetCostOverride installs (or, with a zero value, clears) a per-class
// execution-time override. It applies from the next Launch onward.
func (d *Device) SetCostOverride(o CostOverride) { d.override = o }

// EnsureStreams grows the stream set to at least n streams.
func (d *Device) EnsureStreams(n int) {
	for len(d.streams) < n {
		d.streams = append(d.streams, &stream{waitStream: -1})
	}
}

// NumStreams returns the current stream count.
func (d *Device) NumStreams() int { return len(d.streams) }

// CPUTimeUs returns the dispatching CPU's clock.
func (d *Device) CPUTimeUs() float64 { return d.cpuUs }

// AdvanceCPU adds host-side work (framework overhead, Python dispatch,
// optimizer math) to the CPU timeline.
func (d *Device) AdvanceCPU(us float64) { d.cpuUs += us }

// Records returns every kernel executed since the last Reset, in launch
// order. The slice and the records it points to are recycled by the next
// Reset; callers must copy anything they keep across batches.
func (d *Device) Records() []*KernelRecord { return d.records }

// SMBusyUs returns the integral of occupied SMs over device time, the basis
// of the utilization statistics in reports.
func (d *Device) SMBusyUs() float64 { return d.smBusyUs }

// Reset clears all queues, clocks and records and advances the batch
// counter; streams are kept. The jitter stream reseeds from (Seed, batch)
// so each batch draws fresh — but run-to-run reproducible — noise; the
// fault stream deliberately survives Reset (see FaultConfig.Seed).
//
// Reset also recycles the previous batch's kernel records and events into
// the device free-lists: pointers obtained from Launch/RecordEvent/Records
// are valid until the next Reset and must not be retained across it.
func (d *Device) Reset() {
	d.cpuUs, d.simUs = 0, 0
	d.freeSMs = d.cfg.NumSMs
	d.running = d.running[:0]
	d.batches = d.batches[:0]
	d.records = d.records[:0]
	d.recUsed, d.kernUsed, d.eventUsed = 0, 0, 0
	d.launchSeq = 0
	d.smBusyUs = 0
	d.batch++
	d.rng.Reseed(d.cfg.Seed + uint64(d.batch)*0x9E3779B97F4A7C15)
	for _, s := range d.streams {
		s.queue = s.queue[:0]
		s.head = 0
		s.busy = nil
		s.lastDone = 0
		s.waitUntil = 0
		s.waitStream = -1
		s.waitTag = ""
	}
}

// Launch enqueues a kernel on a stream. It consumes the configured launch
// overhead on the CPU timeline and returns asynchronously, like
// cudaLaunchKernel.
//
//astra:hotpath
func (d *Device) Launch(streamID int, spec KernelSpec) *KernelRecord {
	if spec.Tiles <= 0 || spec.TileTimeUs <= 0 {
		panic(fmt.Sprintf("gpusim: bad kernel spec %+v", spec))
	}
	s := d.stream(streamID)
	d.cpuUs += d.cfg.LaunchOverheadUs
	setup := spec.SetupUs
	if setup == 0 {
		setup = d.cfg.KernelSetupUs
	}
	jitter := 1.0
	if d.cfg.Autoboost {
		jitter = 1 + d.cfg.BoostJitter*(2*d.rng.Float64()-1)
	}
	if f := d.cfg.Faults; f.StragglerProb > 0 && d.faultRNG.Float64() < f.StragglerProb {
		factor := f.StragglerFactor
		if factor <= 1 {
			factor = 3
		}
		jitter *= factor
	}
	if d.Throttled() && (d.cfg.Faults.ThrottleClass == "" ||
		obs.KernelClass(spec.Name) == d.cfg.Faults.ThrottleClass) {
		factor := d.cfg.Faults.ThrottleFactor
		if factor <= 1 {
			factor = 1.3
		}
		jitter *= factor
	}
	if len(d.override.ClassTimeFactors) > 0 {
		if f, ok := d.override.ClassTimeFactors[obs.KernelClass(spec.Name)]; ok && f > 0 {
			jitter *= f
		}
	}
	rec := d.newRecord()
	rec.Name = spec.Name
	rec.Stream = streamID
	rec.LaunchUs = d.cpuUs
	rec.Tiles = spec.Tiles
	rec.TileTimeUs = spec.TileTimeUs * jitter
	d.records = append(d.records, rec)
	k := d.newKernel()
	k.rec = rec
	k.setupUs = setup
	k.seq = d.launchSeq
	d.launchSeq++
	k.unassigned = spec.Tiles
	k.jitter = jitter
	s.push(item{kind: itemKernel, arrivalUs: d.cpuUs, kern: k})
	return rec
}

// RecordEvent places a cudaEvent on the stream; it resolves when the stream
// drains to it. Recording costs a negligible, fixed CPU time (0.2 µs),
// which is what makes always-on profiling affordable (§5.2).
//
//astra:hotpath
func (d *Device) RecordEvent(streamID int) *Event {
	s := d.stream(streamID)
	d.cpuUs += 0.2
	d.eventSeq++
	e := d.newEvent()
	e.id = d.eventSeq
	e.stream = streamID
	s.push(item{kind: itemRecord, arrivalUs: d.cpuUs, event: e})
	return e
}

// WaitEvent makes subsequent work on the stream wait until the event
// resolves (cudaStreamWaitEvent).
func (d *Device) WaitEvent(streamID int, e *Event) {
	d.WaitEventTag(streamID, e, "")
}

// WaitEventTag is WaitEvent with a dispatcher-supplied label describing why
// the wait exists ("epoch", "barrier", "bucket", ...). The tag is copied
// onto the KernelRecord of any kernel whose start is held back by this wait,
// so trace analysis can classify the resulting idle gap without re-deriving
// dispatcher intent from kernel names.
//
//astra:hotpath
func (d *Device) WaitEventTag(streamID int, e *Event, tag string) {
	s := d.stream(streamID)
	d.cpuUs += 0.2
	s.push(item{kind: itemWait, arrivalUs: d.cpuUs, event: e, tag: tag})
}

// Synchronize drains all streams (cudaDeviceSynchronize): the simulation
// runs to completion and the CPU clock advances to the device completion
// time if the device finished later.
func (d *Device) Synchronize() {
	d.drain()
	if d.simUs > d.cpuUs {
		d.cpuUs = d.simUs
	}
}

// HostTransfer models a synchronous PCIe copy of n bytes. The CPU blocks
// for the link latency plus serialization time after the stream drains —
// the cost structure behind XLA's embedding pathology (§6.6).
func (d *Device) HostTransfer(streamID int, bytes int64) {
	d.Synchronize()
	dur := d.cfg.HostTransferLatencyUs
	if d.cfg.HostTransferBytesPerUs > 0 {
		dur += float64(bytes) / d.cfg.HostTransferBytesPerUs
	}
	d.cpuUs += dur
	if d.simUs < d.cpuUs {
		d.simUs = d.cpuUs
	}
}

func (d *Device) stream(id int) *stream {
	if id < 0 || id >= len(d.streams) {
		panic(fmt.Sprintf("gpusim: stream %d of %d", id, len(d.streams)))
	}
	return d.streams[id]
}

// ---- discrete-event engine ----

type tileBatch struct {
	doneUs float64
	kern   *kernel
	sms    int
}

type batchHeap []tileBatch

func (h batchHeap) Len() int           { return len(h) }
func (h batchHeap) Less(i, j int) bool { return h[i].doneUs < h[j].doneUs }
func (h batchHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *batchHeap) push(b tileBatch) {
	*h = append(*h, b)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p].doneUs <= (*h)[i].doneUs {
			break
		}
		h.Swap(i, p)
		i = p
	}
}
func (h *batchHeap) pop() tileBatch {
	top := (*h)[0]
	last := len(*h) - 1
	(*h)[0] = (*h)[last]
	*h = (*h)[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(*h) && (*h)[l].doneUs < (*h)[small].doneUs {
			small = l
		}
		if r < len(*h) && (*h)[r].doneUs < (*h)[small].doneUs {
			small = r
		}
		if small == i {
			break
		}
		h.Swap(i, small)
		i = small
	}
	return top
}

// drain runs the event loop until every queue is empty and every kernel has
// retired.
//
//astra:hotpath
func (d *Device) drain() {
	for {
		d.startEligibleWork()
		d.allocateSMs()
		next := d.nextEventTime()
		if math.IsInf(next, 1) {
			if d.pendingWork() {
				panic("gpusim: deadlock — pending work with no runnable event (likely a wait on an event recorded later on the same stream)")
			}
			return
		}
		if next > d.simUs {
			d.simUs = next
		}
		d.completeBatchesAt(d.simUs)
	}
}

// startEligibleWork pops stream-queue heads that can make progress at the
// current simulated time.
//
//astra:hotpath
func (d *Device) startEligibleWork() {
	for progress := true; progress; {
		progress = false
		for _, s := range d.streams {
			for s.pending() > 0 {
				it := s.peek()
				// Stream FIFO: nothing passes a busy kernel.
				if s.busy != nil {
					break
				}
				eligible := math.Max(it.arrivalUs, math.Max(s.lastDone, s.waitUntil))
				switch it.kind {
				case itemRecord:
					// An event resolves as soon as the stream has drained
					// to it; that can be in the simulated past.
					it.event.resolved = true
					it.event.timeUs = eligible
					s.advance()
					progress = true
					continue
				case itemWait:
					if !it.event.resolved {
						// Blocked until some other stream resolves it.
						break
					}
					if it.event.timeUs > s.waitUntil {
						s.waitUntil = it.event.timeUs
						s.waitStream = it.event.stream
						s.waitTag = it.tag
					}
					s.advance()
					progress = true
					continue
				case itemKernel:
					if eligible > d.simUs {
						break
					}
					k := it.kern
					k.started = true
					k.rec.StartUs = eligible
					// Record the three operands of the start-time max so the
					// analyzer can reconstruct which constraint bound this
					// kernel (exact float copies: zero-tolerance matching).
					k.rec.FreeUs = s.lastDone
					k.rec.WaitUs = s.waitUntil
					k.rec.WaitStream = s.waitStream
					k.rec.WaitTag = s.waitTag
					k.readyAt = eligible + k.setupUs
					s.busy = k
					d.running = append(d.running, k)
					s.advance()
					progress = true
					continue
				}
				break
			}
		}
	}
}

// allocateSMs distributes free SMs among running kernels whose setup is
// complete, least-allocated-first, so concurrent kernels share the machine
// fairly the way concurrent thread-block grids do.
//
//astra:hotpath
func (d *Device) allocateSMs() {
	for d.freeSMs > 0 {
		needy := d.needyKernels()
		if len(needy) == 0 {
			return
		}
		// slices.SortFunc does not allocate (sort.Slice boxes its closure,
		// which was the last per-launch heap allocation on this path). The
		// seq tie-break makes the order total, so the result is identical
		// for any sorting algorithm.
		slices.SortFunc(needy, func(a, b *kernel) int {
			if a.assigned != b.assigned {
				return a.assigned - b.assigned
			}
			if a.rec.LaunchUs != b.rec.LaunchUs {
				if a.rec.LaunchUs < b.rec.LaunchUs {
					return -1
				}
				return 1
			}
			return a.seq - b.seq
		})
		k := needy[0]
		share := d.freeSMs / len(needy)
		if share < 1 {
			share = 1
		}
		g := share
		if g > k.unassigned {
			g = k.unassigned
		}
		k.unassigned -= g
		k.inFlight += g
		k.assigned += g
		d.freeSMs -= g
		d.batches.push(tileBatch{doneUs: d.simUs + k.rec.TileTimeUs, kern: k, sms: g})
	}
}

// needyKernels rebuilds the scratch list of kernels waiting for SMs.
//
//astra:hotpath
func (d *Device) needyKernels() []*kernel {
	out := d.needy[:0]
	for _, k := range d.running {
		if k.unassigned > 0 && k.readyAt <= d.simUs {
			out = append(out, k)
		}
	}
	d.needy = out
	return out
}

// nextEventTime returns the earliest time at which the simulation state can
// change: a tile batch completes, a kernel's setup finishes, or a stream
// head becomes eligible.
//
//astra:hotpath
func (d *Device) nextEventTime() float64 {
	next := math.Inf(1)
	if len(d.batches) > 0 {
		next = d.batches[0].doneUs
	}
	for _, k := range d.running {
		if k.unassigned > 0 && k.readyAt > d.simUs && k.readyAt < next && d.freeSMs > 0 {
			next = k.readyAt
		}
	}
	for _, s := range d.streams {
		if s.pending() == 0 || s.busy != nil {
			continue
		}
		it := s.peek()
		if it.kind == itemWait && !it.event.resolved {
			continue
		}
		eligible := math.Max(it.arrivalUs, math.Max(s.lastDone, s.waitUntil))
		if eligible > d.simUs && eligible < next {
			next = eligible
		}
	}
	return next
}

// completeBatchesAt retires every tile batch due at or before t.
//
//astra:hotpath
func (d *Device) completeBatchesAt(t float64) {
	for len(d.batches) > 0 && d.batches[0].doneUs <= t {
		b := d.batches.pop()
		k := b.kern
		k.inFlight -= b.sms
		k.assigned -= b.sms
		d.freeSMs += b.sms
		d.smBusyUs += float64(b.sms) * k.rec.TileTimeUs
		if k.unassigned == 0 && k.inFlight == 0 {
			k.rec.EndUs = b.doneUs
			k.rec.SMTimeUs = float64(k.rec.Tiles) * k.rec.TileTimeUs
			d.retire(k)
		}
	}
}

// retire removes a finished kernel from the running set and frees its stream.
//
//astra:hotpath
func (d *Device) retire(k *kernel) {
	for i, r := range d.running {
		if r == k {
			d.running = append(d.running[:i], d.running[i+1:]...)
			break
		}
	}
	for _, s := range d.streams {
		if s.busy == k {
			s.busy = nil
			if k.rec.EndUs > s.lastDone {
				s.lastDone = k.rec.EndUs
			}
		}
	}
}

func (d *Device) pendingWork() bool {
	if len(d.running) > 0 || len(d.batches) > 0 {
		return true
	}
	for _, s := range d.streams {
		if s.pending() > 0 {
			return true
		}
	}
	return false
}
