package whatif

import (
	"bytes"
	"fmt"
	"math"

	"astra/internal/distsim"
	"astra/internal/enumerate"
	"astra/internal/gpusim"
	"astra/internal/models"
	"astra/internal/obs"
	"astra/internal/wire"
)

// CheckCell is one scenario's prediction-vs-simulation comparison.
type CheckCell struct {
	Scenario    string  `json:"scenario"`
	Workers     int     `json:"workers"`
	Fabric      string  `json:"fabric,omitempty"`
	PredictedUs float64 `json:"predicted_us"`
	SimulatedUs float64 `json:"simulated_us"`
	ErrPct      float64 `json:"err_pct"`
	Pass        bool    `json:"pass"`
}

// CheckReport is the outcome of validating a scenario matrix against
// ground-truth re-simulation.
type CheckReport struct {
	Model string `json:"model"`
	// BaseRecordedUs is the recorded last wired batch; BaseSimulatedUs the
	// same batch from the rebuilt session. They must agree exactly, or the
	// log does not describe a session Check knows how to rebuild.
	BaseRecordedUs  float64     `json:"base_recorded_us"`
	BaseSimulatedUs float64     `json:"base_simulated_us"`
	TolerancePct    float64     `json:"tolerance_pct"`
	Cells           []CheckCell `json:"cells"`
	Failures        []string    `json:"failures,omitempty"`
}

// OK reports whether every cell passed.
func (r *CheckReport) OK() bool { return len(r.Failures) == 0 }

// validPreset guards enumerate.PresetOptions, which panics on unknown names.
func validPreset(p string) bool {
	switch enumerate.Preset(p) {
	case enumerate.PresetF, enumerate.PresetFK, enumerate.PresetFKS, enumerate.PresetAll:
		return true
	}
	return false
}

// checkable rejects logs Check cannot ground-truth: replay handles them
// fine, but re-simulation needs to rebuild the exact session from metadata.
func checkable(events []obs.TrialEvent, meta RunMeta) error {
	if !meta.HasMeta {
		return fmt.Errorf("whatif: event log carries no session metadata (predates stamping); -check needs a fresh recording")
	}
	if meta.Model == "" {
		return fmt.Errorf("whatif: event log names no model; cannot rebuild the session")
	}
	if _, ok := models.Get(meta.Model); !ok {
		return fmt.Errorf("whatif: recorded model %q is not in the zoo", meta.Model)
	}
	if meta.ModelScale != "default" && meta.ModelScale != "tiny" {
		return fmt.Errorf("whatif: recorded model scale %q is not reconstructible (only default/tiny are)", meta.ModelScale)
	}
	if !validPreset(meta.Preset) {
		return fmt.Errorf("whatif: recorded preset %q is not a known enumeration preset", meta.Preset)
	}
	if meta.Noisy {
		return fmt.Errorf("whatif: recorded run used a noisy device (autoboost or fault injection); ground truth is not reproducible")
	}
	base := gpusim.P100()
	for i := range events {
		for j := range events[i].Profiles {
			if n := events[i].Profiles[j].NumSMs; n != base.NumSMs {
				return fmt.Errorf("whatif: recorded device has %d SMs, not the P100's %d; cannot rebuild the session", n, base.NumSMs)
			}
		}
	}
	return nil
}

// rebuildSession reconstructs the recorded session from the log metadata:
// same model and scale, same preset and stream count, same device cost
// constants, same fabric and ring. The returned session has not stepped.
func rebuildSession(meta RunMeta) (*wire.Session, error) {
	build, _ := models.Get(meta.Model)
	var mcfg models.Config
	if meta.ModelScale == "tiny" {
		mcfg = models.TinyConfig(meta.Model, meta.PerDeviceBatch)
	} else {
		mcfg = models.DefaultConfig(meta.Model, meta.PerDeviceBatch)
	}
	eopts := enumerate.PresetOptions(enumerate.Preset(meta.Preset))
	if meta.NumStreams > 0 {
		eopts.NumStreams = meta.NumStreams
	}
	dev := gpusim.P100()
	dev.Seed = meta.Seed
	dev.LaunchOverheadUs = meta.LaunchOverheadUs
	dev.KernelSetupUs = meta.KernelSetupUs
	var comm wire.CommConfig
	if meta.Workers >= 2 {
		ic, ok := distsim.FabricByName(meta.Fabric)
		if !ok {
			return nil, fmt.Errorf("whatif: recorded fabric %q is not a known interconnect", meta.Fabric)
		}
		comm = wire.CommConfig{
			Workers:    meta.Workers,
			BytesPerUs: ic.BytesPerUs,
			LatencyUs:  ic.LatencyUs,
			Fabric:     ic.Name,
		}
		eopts.CommAdapt = true
		eopts.Workers = meta.Workers
	}
	return wire.NewSession(build(mcfg), wire.SessionConfig{
		Device:  dev,
		Options: eopts,
		Runner:  wire.RunnerConfig{PerOpCPUUs: meta.PerOpCPUUs},
		Comm:    comm,
	}), nil
}

// groundTruth re-simulates one scenario's wired batch with the real
// simulator: a fresh device carrying the perturbed cost constants (class
// overrides, scaled launch overhead) steps the already-wired plan once.
// Replicas are identical (the device is noise-free, Check guarantees it),
// so one rank-0 runner IS the cluster step — the same solo-reference
// pattern internal/distsim uses.
func groundTruth(s *wire.Session, meta RunMeta, pert Perturbation) (float64, error) {
	dcfg := gpusim.P100()
	dcfg.Seed = meta.Seed
	dcfg.LaunchOverheadUs = meta.LaunchOverheadUs * pert.launchFactor()
	dcfg.KernelSetupUs = meta.KernelSetupUs
	dev := gpusim.NewDevice(dcfg)
	if len(pert.Speedups) > 0 {
		factors := map[string]float64{}
		for class, f := range pert.Speedups { // nodeterm:ok order-independent map build
			factors[class] = 1 / f
		}
		dev.SetCostOverride(gpusim.CostOverride{ClassTimeFactors: factors})
	}
	rcfg := wire.RunnerConfig{PerOpCPUUs: meta.PerOpCPUUs, Profile: true}
	workers := meta.Workers
	if pert.Workers != 0 {
		workers = pert.Workers
	}
	if workers >= 2 {
		fabric := meta.Fabric
		if pert.Fabric != "" {
			fabric = pert.Fabric
		}
		ic, ok := distsim.FabricByName(fabric)
		if !ok {
			return 0, fmt.Errorf("whatif: unknown fabric %q", fabric)
		}
		rcfg.Comm = wire.CommConfig{
			Workers:    workers,
			BytesPerUs: ic.BytesPerUs,
			LatencyUs:  ic.LatencyUs,
			Fabric:     ic.Name,
		}
	}
	return wire.NewRunner(s.Plan, dev, rcfg).RunBatch(nil, nil).TotalUs, nil
}

// Check validates every scenario's replay prediction against ground-truth
// re-simulation: it rebuilds the recorded session from the log metadata,
// re-explores to the same wired schedule, asserts the rebuilt wired batch
// reproduces the recording exactly, then re-simulates each scenario with
// the perturbation applied to the real simulator and compares. `par`
// bounds prediction parallelism (<1 = one goroutine per CPU); simulations
// run sequentially (they share the rebuilt plan).
func Check(events []obs.TrialEvent, scenarios []Scenario, tolerancePct float64, par int) (*CheckReport, error) {
	meta := MetaFromEvents(events)
	if err := checkable(events, meta); err != nil {
		return nil, err
	}
	for _, sc := range scenarios {
		if sc.Pert.bucketFactor() != 1 {
			return nil, fmt.Errorf("whatif: scenario %q: bucket-size perturbations are replay-only (amortized re-cost; the simulator would re-bucket the exchange)", sc.Name)
		}
	}
	recWired := 0.0
	sawWired := false
	for i := range events {
		if events[i].Phase == "wired" {
			recWired = events[i].BatchUs
			sawWired = true
		}
	}
	if !sawWired {
		return nil, fmt.Errorf("whatif: event log has no wired batch; -check needs a recording that ran past exploration")
	}

	preds, err := PredictMatrix(events, scenarios, par)
	if err != nil {
		return nil, err
	}

	s, err := rebuildSession(meta)
	if err != nil {
		return nil, err
	}
	s.Explore()
	if err := s.Err(); err != nil {
		return nil, fmt.Errorf("whatif: rebuilt session failed exploration: %w", err)
	}
	base := s.Step().TotalUs
	rep := &CheckReport{
		Model:           meta.Model,
		BaseRecordedUs:  recWired,
		BaseSimulatedUs: base,
		TolerancePct:    tolerancePct,
	}
	if base != recWired {
		return nil, fmt.Errorf("whatif: log does not reproduce: rebuilt wired batch %.6g µs, recorded %.6g µs — the log was not produced by a default-constructed session (custom runner/device settings?)", base, recWired)
	}

	for i, sc := range scenarios {
		pred := preds[i]
		if pred == nil {
			continue // skipped by a failed prediction; PredictMatrix surfaced the error
		}
		sim, err := groundTruth(s, meta, sc.Pert)
		if err != nil {
			return nil, fmt.Errorf("whatif: scenario %q: %w", sc.Name, err)
		}
		cell := CheckCell{
			Scenario:    sc.Name,
			Workers:     meta.Workers,
			Fabric:      meta.Fabric,
			PredictedUs: pred.PredictedWiredUs,
			SimulatedUs: sim,
		}
		if sc.Pert.Workers != 0 {
			cell.Workers = sc.Pert.Workers
		}
		if sc.Pert.Fabric != "" {
			cell.Fabric = sc.Pert.Fabric
		}
		if cell.Workers <= 1 {
			cell.Fabric = ""
		}
		if sim > 0 {
			cell.ErrPct = math.Abs(pred.PredictedWiredUs-sim) / sim * 100
		}
		cell.Pass = cell.ErrPct <= tolerancePct
		if sc.Pert.Identity() && pred.PredictedWiredUs != sim {
			// Identity must be bit-exact, not merely within tolerance.
			cell.Pass = false
		}
		if !cell.Pass {
			rep.Failures = append(rep.Failures, fmt.Sprintf(
				"scenario %q: predicted %.6g µs vs simulated %.6g µs (%.2f%% > %.2f%%)",
				sc.Name, cell.PredictedUs, cell.SimulatedUs, cell.ErrPct, tolerancePct))
		}
		rep.Cells = append(rep.Cells, cell)
	}
	return rep, nil
}

// SelfCheck records a fresh session end-to-end and validates the scenario
// matrix against it: build → instrument with an in-memory event sink →
// explore → run wired batches → replay + Check. It is the round-trip proof
// the ext-whatif harness experiment and the CI smoke job run.
func SelfCheck(model string, batch, workers int, fabric string, preset enumerate.Preset, tiny bool, wiredSteps int, scenarios []Scenario, tolerancePct float64) (*CheckReport, error) {
	build, ok := models.Get(model)
	if !ok {
		return nil, fmt.Errorf("whatif: unknown model %q", model)
	}
	var mcfg models.Config
	if tiny {
		mcfg = models.TinyConfig(model, batch)
	} else {
		mcfg = models.DefaultConfig(model, batch)
	}
	eopts := enumerate.PresetOptions(preset)
	var comm wire.CommConfig
	if workers >= 2 {
		ic, ok := distsim.FabricByName(fabric)
		if !ok {
			return nil, fmt.Errorf("whatif: unknown fabric %q", fabric)
		}
		comm = wire.CommConfig{
			Workers:    workers,
			BytesPerUs: ic.BytesPerUs,
			LatencyUs:  ic.LatencyUs,
			Fabric:     ic.Name,
		}
		eopts.CommAdapt = true
		eopts.Workers = workers
	}
	s := wire.NewSession(build(mcfg), wire.SessionConfig{
		Device:  gpusim.P100(),
		Options: eopts,
		Runner:  wire.RunnerConfig{PerOpCPUUs: 2},
		Comm:    comm,
	})
	var buf bytes.Buffer
	tel := obs.NewTelemetry()
	tel.SetEventSink(&buf)
	s.Instrument(tel)
	s.Explore()
	if err := s.Err(); err != nil {
		return nil, fmt.Errorf("whatif: selfcheck session failed: %w", err)
	}
	if wiredSteps < 1 {
		wiredSteps = 1
	}
	for i := 0; i < wiredSteps; i++ {
		s.Step()
	}
	events, err := obs.ReadTrialEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return nil, fmt.Errorf("whatif: selfcheck event log: %w", err)
	}
	return Check(events, scenarios, tolerancePct, 1)
}
