package whatif

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
)

// topBlame returns the class with the largest critical-path blame.
func topBlame(blame map[string]float64) string {
	top, best := "", 0.0
	for _, c := range sortedBlameKeys(blame) {
		if v := blame[c]; v > best {
			top, best = c, v
		}
	}
	return top
}

func sortedBlameKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // nodeterm:ok sorted below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WritePredictions renders a scenario matrix as a fixed-order text table:
// one row per scenario in input order, headline wired-batch numbers plus
// the predicted critical path's dominant class.
func WritePredictions(w io.Writer, preds []*Prediction) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "SCENARIO\tRECORDED_US\tPREDICTED_US\tSPEEDUP\tTOP_BLAME")
	for _, p := range preds {
		if p == nil {
			continue
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.3fx\t%s\n",
			p.Scenario.Name, p.RecordedWiredUs, p.PredictedWiredUs, p.SpeedupX, topBlame(p.Blame))
	}
	tw.Flush()
}

// WritePrediction renders one scenario in detail: headline numbers, the
// predicted per-class blame, and the run-level diff attribution.
func WritePrediction(w io.Writer, p *Prediction) {
	fmt.Fprintf(w, "scenario: %s\n", p.Scenario.Name)
	fmt.Fprintf(w, "recorded wired batch: %.2f us\n", p.RecordedWiredUs)
	fmt.Fprintf(w, "predicted wired batch: %.2f us (%.3fx)\n", p.PredictedWiredUs, p.SpeedupX)
	fmt.Fprintf(w, "recorded run total: %.2f us -> predicted %.2f us over %d batches\n",
		p.RecordedTotalUs, p.PredictedTotalUs, len(p.Batches))
	if len(p.Blame) > 0 {
		fmt.Fprintln(w, "predicted critical-path blame:")
		for _, c := range sortedBlameKeys(p.Blame) {
			fmt.Fprintf(w, "  %-10s %12.2f us\n", c, p.Blame[c])
		}
	}
	if p.Diff != nil && p.Diff.TopClass != "" {
		fmt.Fprintf(w, "blame shift: %s (share %.2f of the aligned delta)\n",
			p.Diff.TopClass, p.Diff.TopClassShare)
	}
}

// WriteCheckReport renders a validation run: the base reproduction line,
// one row per cell, and any failures.
func WriteCheckReport(w io.Writer, r *CheckReport) {
	fmt.Fprintf(w, "model: %s\n", r.Model)
	fmt.Fprintf(w, "base wired batch: recorded %.2f us, re-simulated %.2f us\n",
		r.BaseRecordedUs, r.BaseSimulatedUs)
	fmt.Fprintf(w, "tolerance: %.2f%%\n", r.TolerancePct)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "SCENARIO\tWORKERS\tFABRIC\tPREDICTED_US\tSIMULATED_US\tERR%\tRESULT")
	for _, c := range r.Cells {
		result := "PASS"
		if !c.Pass {
			result = "FAIL"
		}
		fabric := c.Fabric
		if fabric == "" {
			fabric = "-"
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%.2f\t%.2f\t%.3f\t%s\n",
			c.Scenario, c.Workers, fabric, c.PredictedUs, c.SimulatedUs, c.ErrPct, result)
	}
	tw.Flush()
	if len(r.Failures) > 0 {
		fmt.Fprintf(w, "%d failure(s):\n", len(r.Failures))
		for _, f := range r.Failures {
			fmt.Fprintf(w, "  %s\n", f)
		}
	} else {
		fmt.Fprintf(w, "all %d cells within tolerance\n", len(r.Cells))
	}
}
