package whatif

import (
	"math"

	"astra/internal/analyze"
	"astra/internal/distsim"
	"astra/internal/obs"
)

// commRecost re-costs communication kernels for a fabric swap, a ring
// re-size, or a bucket re-scale. Each recorded comm kernel is one step of a
// 2·(nOld−1)-step ring all-reduce; its recorded tile time (SMTimeUs —
// comm kernels are single-tile, so the value is the exact per-step time)
// decomposes into per-link serialization plus hop latency, which inverts to
// the bucket's payload. The replayed kernel then stands for `ratio` kernels
// of the new ring (stepsNew steps per bucket, 1/bucketFactor buckets), each
// running the new per-step time.
type commRecost struct {
	old, new distsim.Interconnect
	nOld     int
	nNew     int
	bf       float64
	ratio    float64 // replayed comm kernels per recorded one
}

func newCommRecost(meta RunMeta, pert Perturbation) *commRecost {
	bf := pert.bucketFactor()
	if pert.Fabric == "" && pert.Workers == 0 && bf == 1 {
		return nil
	}
	if meta.Workers < 2 {
		return nil // validated earlier; single-GPU logs have no comm kernels
	}
	old, _ := distsim.FabricByName(meta.Fabric)
	cr := &commRecost{old: old, new: old, nOld: meta.Workers, nNew: meta.Workers, bf: bf}
	if pert.Fabric != "" {
		cr.new, _ = distsim.FabricByName(pert.Fabric)
	}
	if pert.Workers != 0 {
		cr.nNew = pert.Workers
	}
	if cr.new == cr.old && cr.nNew == cr.nOld && cr.bf == 1 {
		return nil
	}
	stepsOld := float64(2 * (cr.nOld - 1))
	stepsNew := float64(2 * (cr.nNew - 1))
	cr.ratio = stepsNew / (stepsOld * bf)
	return cr
}

// recost maps one recorded per-step tile time to the new per-step tile
// time. Inversion: tileOld = bytes/(nOld·bwOld) + latOld, so the bucket
// payload is (tileOld − latOld)·bwOld·nOld; the new step moves
// payload·bf/nNew over the new link.
func (cr *commRecost) recost(tileOld float64) float64 {
	payload := (tileOld - cr.old.LatencyUs) * cr.old.BytesPerUs * float64(cr.nOld)
	if payload < 0 {
		payload = 0
	}
	return payload*cr.bf/(float64(cr.nNew)*cr.new.BytesPerUs) + cr.new.LatencyUs
}

// commSetupUs is the fixed device-side setup of a communication step
// kernel (wire.launchBucketAllReduce issues them with SetupUs 0.5).
const commSetupUs = 0.5

// replayProfile re-schedules one worker's recorded batch under the
// perturbation. The forward pass walks kernels in launch order (dependency
// producers always precede their consumers there) re-applying the
// simulator's start rule StartUs = max(LaunchUs, FreeUs, WaitUs) with
// perturbed operands. Exactness discipline: any operand the perturbation
// did not move is copied from the record — in particular a kernel whose
// start and duration are both untouched copies its recorded EndUs rather
// than recomputing start+duration, so identity replays are bit-exact and
// class speedups are exactly monotone.
func replayProfile(p *obs.BatchProfile, meta RunMeta, pert Perturbation, cr *commRecost) obs.BatchProfile {
	n := len(p.Kernels)
	deps := analyze.Dependencies(p)
	lf := pert.launchFactor()
	newLaunchOverheadUs := meta.LaunchOverheadUs * lf

	// CPU launch lane: each kernel's recorded LaunchUs embeds one launch
	// overhead per prior launch (streams share the one dispatcher thread),
	// so scaling the overhead shifts launch i by i+1 deltas — and a
	// re-sized ring adds (ratio−1) extra launches' cost per comm kernel.
	// A dropped comm kernel (ratio 0) refunds its whole launch cost.
	launchNew := make([]float64, n)
	dropped := make([]bool, n)
	isComm := make([]bool, n)
	cum := 0.0
	for i := range p.Kernels {
		k := &p.Kernels[i]
		isComm[i] = obs.KernelClass(k.Name) == obs.ClassAllReduce
		if cr != nil && isComm[i] && cr.ratio == 0 {
			dropped[i] = true
			cum -= meta.PerOpCPUUs + meta.LaunchOverheadUs
			continue
		}
		if lf != 1 {
			cum += meta.LaunchOverheadUs * (lf - 1)
		}
		launchNew[i] = k.LaunchUs + cum
		if cr != nil && isComm[i] && cr.ratio != 1 {
			cum += (cr.ratio - 1) * (meta.PerOpCPUUs + newLaunchOverheadUs)
		}
	}
	totalShift := cum

	// Forward scheduling pass.
	startNew := make([]float64, n)
	endNew := make([]float64, n)
	endEff := make([]float64, n) // stream-FIFO end seen by successors (chains through dropped kernels)
	endsChanged := false
	out := obs.BatchProfile{
		Worker: p.Worker, Streams: p.Streams, CommStream: p.CommStream,
		NumSMs: p.NumSMs,
	}
	anyDropped := false
	for i := range p.Kernels {
		k := &p.Kernels[i]
		free := 0.0
		if j := deps[i].FIFO; j >= 0 {
			free = endEff[j]
		}
		if dropped[i] {
			anyDropped = true
			endEff[i] = free
			continue
		}
		wait := 0.0
		waitStream, waitTag := k.WaitStream, k.WaitTag
		if k.WaitUs > 0 {
			switch j := deps[i].Wait; {
			case j >= 0 && dropped[j]:
				// The producer vanished with the exchange; so did the edge.
				waitStream, waitTag = -1, ""
			case j >= 0:
				wait = endNew[j]
			default:
				// No kernel end matched the recorded operand: the event
				// resolved at its CPU arrival on an already-drained stream.
				// That arrival is not recorded per event, so replay keeps
				// the recorded constant (see docs/WHATIF.md, known limits).
				wait = k.WaitUs
			}
		}
		start := math.Max(launchNew[i], math.Max(free, wait))

		durOld := k.EndUs - k.StartUs
		end := 0.0
		smNew := k.SMTimeUs
		switch f := pert.Speedups[obs.KernelClass(k.Name)]; {
		case cr != nil && isComm[i]:
			tileNew := cr.recost(k.SMTimeUs)
			dur := (commSetupUs + tileNew) * cr.ratio
			end = start + dur
			smNew = tileNew * cr.ratio
		case f != 0 && f != 1:
			// Setup-split scaling: the fixed kernel setup does not speed up
			// with the class; only the tile time does. Clamped so a speedup
			// (f > 1) never lengthens a kernel even at the last ulp — that
			// clamp is what makes the monotonicity property exact.
			setup := meta.KernelSetupUs
			if isComm[i] {
				setup = commSetupUs
			}
			if setup > durOld {
				setup = durOld
			}
			dur := setup + (durOld-setup)/f
			if f > 1 && dur > durOld {
				dur = durOld
			}
			end = start + dur
			if durOld > 0 {
				smNew = k.SMTimeUs * (dur / durOld)
			}
		case start == k.StartUs:
			end = k.EndUs // untouched kernel: exact copy, no re-derivation
		default:
			end = start + durOld
		}
		startNew[i], endNew[i] = start, end
		endEff[i] = end
		if end != k.EndUs {
			endsChanged = true
		}
		out.Kernels = append(out.Kernels, obs.KernelSample{
			Name: k.Name, Stream: k.Stream,
			LaunchUs: launchNew[i], StartUs: start, EndUs: end,
			SMTimeUs: smNew, FreeUs: free, WaitUs: wait,
			WaitStream: waitStream, WaitTag: waitTag,
		})
		out.SMBusyUs += smNew
	}

	// Batch envelope. Device end: copy when no kernel end moved (the
	// recorded value also covers device time past the last kernel, e.g.
	// host transfers); otherwise the latest replayed end.
	deviceEnd := p.EndUs
	if endsChanged || anyDropped {
		deviceEnd = 0
		for i := range endNew {
			if !dropped[i] && endNew[i] > deviceEnd {
				deviceEnd = endNew[i]
			}
		}
	}
	// CPU end: a dispatch-bound recording (CPU clock past the device) keeps
	// its recorded dispatch tail shifted by the launch-lane delta; a
	// device-bound one only needs a lower bound (the last launch), since
	// the device end dominates the max below.
	cpuEnd := p.CPUUs + totalShift
	if p.CPUUs <= p.EndUs {
		cpuEnd = 0
		for i := n - 1; i >= 0; i-- {
			if !dropped[i] {
				cpuEnd = launchNew[i]
				break
			}
		}
	}
	wall := math.Max(deviceEnd, cpuEnd)
	if !endsChanged && !anyDropped && totalShift == 0 {
		wall = p.WallUs() // bit-exact identity
	}
	out.EndUs = deviceEnd
	out.CPUUs = wall // post-Synchronize semantics: CPU clock == batch wall
	if anyDropped && cr != nil && cr.nNew <= 1 {
		out.CommStream = -1
	}
	if !endsChanged && !anyDropped {
		out.SMBusyUs = p.SMBusyUs
	}
	return out
}

// predictEvent replays one event's per-worker profiles and rebuilds the
// event envelope around the predictions.
func predictEvent(ev *obs.TrialEvent, meta RunMeta, pert Perturbation) (obs.TrialEvent, error) {
	out := *ev
	if len(ev.Profiles) == 0 {
		// Nothing to replay; the recorded time is the only estimate.
		return out, nil
	}
	cr := newCommRecost(meta, pert)
	out.Profiles = make([]obs.BatchProfile, 0, len(ev.Profiles))
	out.BatchUs = 0
	replayWorkers := len(ev.Profiles)
	if cr != nil && cr.nNew >= 1 {
		// The ring re-sized: replay min(recorded, new) replicas. Growing
		// keeps the recorded replica count (replicas are identical — the
		// re-costed comm kernels already price the larger ring); shrinking
		// to n keeps the first n (the rest no longer exist).
		if cr.nNew < replayWorkers {
			replayWorkers = cr.nNew
		}
	}
	var workerUs []float64
	for i := 0; i < replayWorkers; i++ {
		np := replayProfile(&ev.Profiles[i], meta, pert, cr)
		out.Profiles = append(out.Profiles, np)
		w := np.WallUs()
		workerUs = append(workerUs, w)
		if w > out.BatchUs {
			out.BatchUs = w
		}
	}
	// Scenario metadata: the predicted log describes the hypothetical
	// cluster, not the recorded one.
	if len(ev.WorkerUs) > 0 || (cr != nil && cr.nNew > 1) {
		out.WorkerUs = workerUs
		out.Workers = len(workerUs)
		if cr != nil {
			out.Workers = cr.nNew
			out.Fabric = cr.new.Name
		}
	}
	if cr != nil && cr.nNew <= 1 {
		out.Workers, out.WorkerUs, out.Fabric, out.CommUs = 0, nil, "", 0
	}
	// Comm link-busy time and kernel count re-derive from worker 0's
	// replayed timeline, mirroring the runner's accounting.
	if len(out.Profiles) > 0 {
		p0 := &out.Profiles[0]
		out.Kernels = len(p0.Kernels)
		if out.Workers > 0 {
			comm := 0.0
			for i := range p0.Kernels {
				k := &p0.Kernels[i]
				if obs.KernelClass(k.Name) == obs.ClassAllReduce {
					comm += k.EndUs - k.StartUs
				}
			}
			out.CommUs = comm
		}
	}
	return out, nil
}
