// Package whatif is Astra's trace-replay what-if engine: it loads a
// recorded run's event log (obs.TrialEvent records carrying per-kernel
// BatchProfile start-rule operands), reconstructs the per-worker ×
// per-stream dependency graph that internal/analyze already exposes, and
// re-schedules it under a hypothetical perturbation — a kernel class got
// N× faster, the fabric changed, launches got cheaper, buckets doubled,
// the ring grew to eight workers — predicting the new wall time, critical
// path and per-class blame without re-running exploration.
//
// This is the Daydream idea (see PAPERS.md) applied to Astra's simulated
// substrate: one recorded run is enough to rank hypothetical
// optimizations, because kernel runtimes perturb independently while the
// dependency structure persists. Two properties keep the engine honest:
//
//   - Identity is exact. Replaying with no perturbation reproduces every
//     recorded batch time bit-for-bit, because every quantity a
//     perturbation did not touch is copied from the record, never
//     recomputed (floating-point re-derivation would drift).
//   - Predictions are validated against ground truth. Check re-simulates
//     each scenario with the real gpusim (cost overrides, a re-costed
//     CommConfig) and asserts the replay lands within a small tolerance;
//     see docs/WHATIF.md for the methodology and known limits.
package whatif

import (
	"fmt"
	"sort"
	"strings"

	"astra/internal/analyze"
	"astra/internal/distsim"
	"astra/internal/obs"
	"astra/internal/parallel"
)

// Perturbation describes one hypothetical change to a recorded run. The
// zero value is the identity (replay reproduces the recording exactly).
type Perturbation struct {
	// Speedups maps kernel classes (obs.KernelClasses) to speedup factors:
	// 2 halves the class's per-kernel execution time (setup cost excluded
	// — a faster GEMM library still pays kernel launch fixed costs).
	// Factors below 1 are slowdowns. 1 is a no-op.
	Speedups map[string]float64
	// LaunchFactor scales the CPU-side kernel launch overhead (0.5 = a
	// twice-as-fast dispatcher). 0 or 1 leaves it unchanged.
	LaunchFactor float64
	// Fabric swaps the gradient-exchange interconnect (distsim fabric
	// names); "" keeps the recorded fabric. Requires a multi-worker
	// recording.
	Fabric string
	// Workers re-sizes the data-parallel ring at a constant per-device
	// batch (weak scaling): comm kernels are re-costed for the new
	// 2·(n−1)-step ring. 0 keeps the recorded count; 1 removes the
	// exchange entirely. Requires a multi-worker recording.
	Workers int
	// BucketFactor scales the gradient-bucket size (2 = half as many
	// buckets, each twice the payload). Replay-only: the re-cost is
	// amortized (each recorded comm kernel stands for 1/factor kernels of
	// factor× payload), so Check rejects it. 0 or 1 leaves it unchanged.
	BucketFactor float64
}

// Identity reports whether the perturbation changes nothing.
func (p Perturbation) Identity() bool {
	for _, f := range p.Speedups { // nodeterm:ok order-independent any-match
		if f != 1 {
			return false
		}
	}
	return (p.LaunchFactor == 0 || p.LaunchFactor == 1) &&
		p.Fabric == "" && p.Workers == 0 &&
		(p.BucketFactor == 0 || p.BucketFactor == 1)
}

// launchFactor returns the effective launch-overhead scale (1 = unchanged).
func (p Perturbation) launchFactor() float64 {
	if p.LaunchFactor == 0 {
		return 1
	}
	return p.LaunchFactor
}

// bucketFactor returns the effective bucket scale (1 = unchanged).
func (p Perturbation) bucketFactor() float64 {
	if p.BucketFactor == 0 {
		return 1
	}
	return p.BucketFactor
}

// validate checks the perturbation against the recorded run's metadata.
func (p Perturbation) validate(meta RunMeta) error {
	classes := make([]string, 0, len(p.Speedups))
	for class := range p.Speedups { // nodeterm:ok sorted below
		classes = append(classes, class)
	}
	sort.Strings(classes)
	for _, class := range classes {
		f := p.Speedups[class]
		if !validClass(class) {
			return fmt.Errorf("whatif: unknown kernel class %q (valid: %s)",
				class, strings.Join(obs.KernelClasses(), ", "))
		}
		if f <= 0 {
			return fmt.Errorf("whatif: speedup factor for class %q must be positive, got %v", class, f)
		}
	}
	if p.LaunchFactor < 0 {
		return fmt.Errorf("whatif: launch-overhead factor must be positive, got %v", p.LaunchFactor)
	}
	if p.BucketFactor < 0 {
		return fmt.Errorf("whatif: bucket factor must be positive, got %v", p.BucketFactor)
	}
	if p.Workers < 0 {
		return fmt.Errorf("whatif: worker count must be positive, got %d", p.Workers)
	}
	if p.Fabric != "" {
		if _, ok := distsim.FabricByName(p.Fabric); !ok {
			return fmt.Errorf("whatif: unknown fabric %q (valid: %s)",
				p.Fabric, strings.Join(fabricNames(), ", "))
		}
	}
	commChange := p.Fabric != "" || p.Workers > 1 || p.bucketFactor() != 1
	if commChange && meta.Workers < 2 {
		return fmt.Errorf("whatif: recorded run is single-GPU (no gradient exchange to re-cost); fabric/workers/bucket perturbations need a -workers >= 2 recording")
	}
	if meta.Workers >= 2 && (p.Fabric != "" || p.Workers != 0 || p.bucketFactor() != 1) {
		if _, ok := distsim.FabricByName(meta.Fabric); !ok {
			return fmt.Errorf("whatif: recorded fabric %q is not a known interconnect; cannot re-cost communication", meta.Fabric)
		}
	}
	return nil
}

func validClass(c string) bool {
	for _, k := range obs.KernelClasses() {
		if k == c {
			return true
		}
	}
	return false
}

func fabricNames() []string {
	var out []string
	for _, ic := range distsim.Fabrics() {
		out = append(out, ic.Name)
	}
	sort.Strings(out)
	return out
}

// Scenario is a named perturbation — one cell of a what-if matrix.
type Scenario struct {
	Name string       `json:"name"`
	Pert Perturbation `json:"perturbation"`
}

// RunMeta pins the recorded session's construction facts, read from the
// metadata the wire session stamps on every event record. Older logs
// without metadata fall back to the simulator defaults (good enough for
// replay; Check refuses them).
type RunMeta struct {
	Model            string  `json:"model,omitempty"`
	ModelScale       string  `json:"model_scale,omitempty"`
	PerDeviceBatch   int     `json:"per_device_batch,omitempty"`
	Preset           string  `json:"preset,omitempty"`
	NumStreams       int     `json:"num_streams,omitempty"`
	Seed             uint64  `json:"seed,omitempty"`
	PerOpCPUUs       float64 `json:"per_op_cpu_us"`
	LaunchOverheadUs float64 `json:"launch_overhead_us"`
	KernelSetupUs    float64 `json:"kernel_setup_us"`
	Workers          int     `json:"workers"`
	Fabric           string  `json:"fabric,omitempty"`
	Noisy            bool    `json:"noisy,omitempty"`
	// HasMeta reports whether the log carried session metadata at all.
	HasMeta bool `json:"has_meta"`
}

// MetaFromEvents extracts the run metadata from an event log. Cost
// constants default to the P100 configuration (launch 7 µs, setup 1.5 µs,
// per-op CPU 2 µs) when the log predates metadata stamping.
func MetaFromEvents(events []obs.TrialEvent) RunMeta {
	meta := RunMeta{PerOpCPUUs: 2, LaunchOverheadUs: 7, KernelSetupUs: 1.5, Workers: 1}
	for i := range events {
		ev := &events[i]
		if ev.Workers > meta.Workers {
			meta.Workers = ev.Workers
		}
		if ev.Fabric != "" {
			meta.Fabric = ev.Fabric
		}
		if ev.Model == "" {
			continue
		}
		meta.HasMeta = true
		meta.Model = ev.Model
		meta.ModelScale = ev.ModelScale
		meta.PerDeviceBatch = ev.PerDeviceBatch
		meta.Preset = ev.Preset
		meta.NumStreams = ev.NumStreams
		meta.Seed = ev.Seed
		meta.PerOpCPUUs = ev.PerOpCPUUs
		meta.LaunchOverheadUs = ev.LaunchOverheadUs
		meta.KernelSetupUs = ev.KernelSetupUs
		meta.Noisy = meta.Noisy || ev.Noisy
	}
	return meta
}

// BatchPrediction pairs one recorded batch with its predicted replay.
type BatchPrediction struct {
	Batch       int     `json:"batch"`
	Trial       int     `json:"trial"`
	Phase       string  `json:"phase"`
	RecordedUs  float64 `json:"recorded_us"`
	PredictedUs float64 `json:"predicted_us"`
}

// Prediction is the replay of one scenario over a whole event log.
type Prediction struct {
	Scenario Scenario `json:"scenario"`
	Meta     RunMeta  `json:"meta"`
	// Batches holds every replayed batch in log order.
	Batches []BatchPrediction `json:"batches"`
	// RecordedTotalUs/PredictedTotalUs sum the batch times over the log.
	RecordedTotalUs  float64 `json:"recorded_total_us"`
	PredictedTotalUs float64 `json:"predicted_total_us"`
	// RecordedWiredUs/PredictedWiredUs are the headline numbers: the last
	// wired batch (steady state) before and after the perturbation, and
	// SpeedupX their ratio (>1 = the perturbation helps).
	RecordedWiredUs  float64 `json:"recorded_wired_us"`
	PredictedWiredUs float64 `json:"predicted_wired_us"`
	SpeedupX         float64 `json:"speedup_x"`
	// Blame is the predicted last wired batch's critical-path blame (the
	// new critical path, summed by class), and Diff the run-level blame
	// delta attribution recorded → predicted.
	Blame map[string]float64  `json:"blame"`
	Path  []analyze.Segment   `json:"path,omitempty"`
	Diff  *analyze.DiffReport `json:"diff"`
	// Events holds the predicted event log: the recorded events with
	// profiles, batch times and scenario metadata (fabric, workers)
	// replaced by their replayed values. Every analyze entry point runs on
	// it unchanged.
	Events []obs.TrialEvent `json:"-"`
}

// Predict replays every batch of the event log under the scenario.
func Predict(events []obs.TrialEvent, sc Scenario) (*Prediction, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("whatif: empty event log")
	}
	meta := MetaFromEvents(events)
	if err := sc.Pert.validate(meta); err != nil {
		return nil, err
	}
	pred := &Prediction{Scenario: sc, Meta: meta}
	clock := 0.0
	sawWired := false
	for i := range events {
		ev, err := predictEvent(&events[i], meta, sc.Pert)
		if err != nil {
			return nil, fmt.Errorf("whatif: batch %d: %w", events[i].Batch, err)
		}
		ev.StartUs = clock
		clock += ev.BatchUs
		pred.Events = append(pred.Events, ev)
		pred.Batches = append(pred.Batches, BatchPrediction{
			Batch: ev.Batch, Trial: ev.Trial, Phase: ev.Phase,
			RecordedUs: events[i].BatchUs, PredictedUs: ev.BatchUs,
		})
		pred.RecordedTotalUs += events[i].BatchUs
		pred.PredictedTotalUs += ev.BatchUs
		if ev.Phase == "wired" || !sawWired {
			// Last wired batch wins; an explore-only log falls back to its
			// last trial.
			sawWired = sawWired || ev.Phase == "wired"
			pred.RecordedWiredUs = events[i].BatchUs
			pred.PredictedWiredUs = ev.BatchUs
		}
	}
	if pred.PredictedWiredUs > 0 {
		pred.SpeedupX = pred.RecordedWiredUs / pred.PredictedWiredUs
	}
	// Blame attribution: analyze the recorded and predicted logs with the
	// same machinery reports use, then diff. Single-goroutine analysis —
	// matrix callers parallelize across scenarios, not inside one.
	recRun, err := analyze.AnalyzeRun(events, 1)
	if err != nil {
		return nil, fmt.Errorf("whatif: analyzing recorded log: %w", err)
	}
	preRun, err := analyze.AnalyzeRun(pred.Events, 1)
	if err != nil {
		return nil, fmt.Errorf("whatif: analyzing predicted log: %w", err)
	}
	pred.Diff = analyze.Diff(recRun, preRun)
	if n := len(preRun.Batches); n > 0 {
		last := preRun.Batches[n-1]
		pred.Blame = last.PathBlame
		pred.Path = last.Path
	}
	return pred, nil
}

// PredictMatrix replays every scenario, fanning out across `par`
// goroutines (<1 = one per CPU) via internal/parallel — the result is
// byte-identical for any parallelism because scenarios are independent
// and merged in input order.
func PredictMatrix(events []obs.TrialEvent, scenarios []Scenario, par int) ([]*Prediction, error) {
	return parallel.Map(par, len(scenarios), func(i int) (*Prediction, error) {
		return Predict(events, scenarios[i])
	})
}
