package whatif

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"astra/internal/obs"
)

// ParseSpeedup parses a CLI speedup spec of the form "class=gemm,factor=2"
// into its (class, factor) pair. Both keys are required; unknown keys,
// unknown classes and non-positive factors are errors, never silent no-ops.
func ParseSpeedup(spec string) (string, float64, error) {
	var class string
	factor := 0.0
	sawClass, sawFactor := false, false
	for _, part := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return "", 0, fmt.Errorf("whatif: bad speedup spec %q: expected key=value, got %q (valid keys: class, factor)", spec, part)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "class":
			if !validClass(val) {
				return "", 0, fmt.Errorf("whatif: bad speedup spec %q: unknown kernel class %q (valid: %s)",
					spec, val, strings.Join(obs.KernelClasses(), ", "))
			}
			class, sawClass = val, true
		case "factor":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return "", 0, fmt.Errorf("whatif: bad speedup spec %q: factor %q is not a number", spec, val)
			}
			if f <= 0 {
				return "", 0, fmt.Errorf("whatif: bad speedup spec %q: factor must be positive, got %v", spec, f)
			}
			factor, sawFactor = f, true
		default:
			return "", 0, fmt.Errorf("whatif: bad speedup spec %q: unknown key %q (valid keys: class, factor)", spec, key)
		}
	}
	if !sawClass || !sawFactor {
		return "", 0, fmt.Errorf("whatif: bad speedup spec %q: both class= and factor= are required", spec)
	}
	return class, factor, nil
}

// ScenarioName derives a stable human-readable name for a perturbation:
// "identity", or "+"-joined parts like "gemm x2+fabric=nvlink1+workers=8".
func ScenarioName(p Perturbation) string {
	if p.Identity() {
		return "identity"
	}
	var classes []string
	for c, f := range p.Speedups { // nodeterm:ok collected then sorted
		if f != 1 {
			classes = append(classes, c)
		}
	}
	sort.Strings(classes)
	var parts []string
	for _, c := range classes {
		parts = append(parts, fmt.Sprintf("%s x%g", c, p.Speedups[c]))
	}
	if lf := p.launchFactor(); lf != 1 {
		parts = append(parts, fmt.Sprintf("launch x%g", lf))
	}
	if bf := p.bucketFactor(); bf != 1 {
		parts = append(parts, fmt.Sprintf("bucket x%g", bf))
	}
	if p.Fabric != "" {
		parts = append(parts, "fabric="+p.Fabric)
	}
	if p.Workers != 0 {
		parts = append(parts, fmt.Sprintf("workers=%d", p.Workers))
	}
	return strings.Join(parts, "+")
}

// NewScenario wraps a perturbation with its derived name.
func NewScenario(p Perturbation) Scenario {
	return Scenario{Name: ScenarioName(p), Pert: p}
}

// MatrixScenarios builds the standard validation grid: identity first, then
// every fabric × ring-size cell (each a pure comm re-cost of the recording).
func MatrixScenarios(fabrics []string, workers []int) []Scenario {
	out := []Scenario{{Name: "identity"}}
	for _, f := range fabrics {
		for _, n := range workers {
			out = append(out, NewScenario(Perturbation{Fabric: f, Workers: n}))
		}
	}
	return out
}
