package whatif

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"astra/internal/analyze"
	"astra/internal/distsim"
	"astra/internal/enumerate"
	"astra/internal/gpusim"
	"astra/internal/models"
	"astra/internal/obs"
	"astra/internal/wire"
)

// recordRun records a fresh tiny session end-to-end and returns its event
// log: explore to convergence, then `wired` post-exploration batches.
func recordRun(t *testing.T, model string, preset enumerate.Preset, workers int, fabric string, wired int) []obs.TrialEvent {
	t.Helper()
	build, ok := models.Get(model)
	if !ok {
		t.Fatalf("unknown model %q", model)
	}
	eopts := enumerate.PresetOptions(preset)
	var comm wire.CommConfig
	if workers >= 2 {
		ic, ok := distsim.FabricByName(fabric)
		if !ok {
			t.Fatalf("unknown fabric %q", fabric)
		}
		comm = wire.CommConfig{Workers: workers, BytesPerUs: ic.BytesPerUs, LatencyUs: ic.LatencyUs, Fabric: ic.Name}
		eopts.CommAdapt = true
		eopts.Workers = workers
	}
	s := wire.NewSession(build(models.TinyConfig(model, 4)), wire.SessionConfig{
		Device:  gpusim.P100(),
		Options: eopts,
		Runner:  wire.RunnerConfig{PerOpCPUUs: 2},
		Comm:    comm,
	})
	var buf bytes.Buffer
	tel := obs.NewTelemetry()
	tel.SetEventSink(&buf)
	s.Instrument(tel)
	s.Explore()
	if err := s.Err(); err != nil {
		t.Fatalf("session error: %v", err)
	}
	for i := 0; i < wired; i++ {
		s.Step()
	}
	events, err := obs.ReadTrialEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reading events: %v", err)
	}
	return events
}

// TestIdentityExactEveryModel is the engine's foundational property: with
// no perturbation, the replay reproduces every recorded batch time of
// every model bit-for-bit — zero tolerance. The predicted log must also
// survive the analyzer's exact reconciliation (Verify).
func TestIdentityExactEveryModel(t *testing.T) {
	for _, model := range models.Names() {
		model := model
		t.Run(model, func(t *testing.T) {
			t.Parallel()
			events := recordRun(t, model, enumerate.PresetFK, 1, "", 2)
			pred, err := Predict(events, Scenario{Name: "identity"})
			if err != nil {
				t.Fatalf("Predict: %v", err)
			}
			for i, b := range pred.Batches {
				if b.PredictedUs != b.RecordedUs {
					t.Fatalf("batch %d (%s): predicted %v != recorded %v", i, b.Phase, b.PredictedUs, b.RecordedUs)
				}
			}
			if pred.PredictedWiredUs != pred.RecordedWiredUs {
				t.Fatalf("wired: predicted %v != recorded %v", pred.PredictedWiredUs, pred.RecordedWiredUs)
			}
			if pred.SpeedupX != 1 {
				t.Fatalf("identity speedup %v, want exactly 1", pred.SpeedupX)
			}
			run, err := analyze.AnalyzeRun(pred.Events, 1)
			if err != nil {
				t.Fatalf("analyzing predicted log: %v", err)
			}
			if err := analyze.Verify(run); err != nil {
				t.Fatalf("predicted log fails exact reconciliation: %v", err)
			}
		})
	}
}

// TestIdentityExactEveryPreset covers the remaining enumeration presets on
// one model (FK is covered for all models above).
func TestIdentityExactEveryPreset(t *testing.T) {
	for _, preset := range []enumerate.Preset{enumerate.PresetF, enumerate.PresetFKS, enumerate.PresetAll} {
		preset := preset
		t.Run(string(preset), func(t *testing.T) {
			t.Parallel()
			events := recordRun(t, "sublstm", preset, 1, "", 2)
			pred, err := Predict(events, Scenario{Name: "identity"})
			if err != nil {
				t.Fatalf("Predict: %v", err)
			}
			for i, b := range pred.Batches {
				if b.PredictedUs != b.RecordedUs {
					t.Fatalf("batch %d: predicted %v != recorded %v", i, b.PredictedUs, b.RecordedUs)
				}
			}
		})
	}
}

// TestIdentityExactMultiWorker: the identity property must hold through
// the comm lane too (waits binding compute streams to exchange kernels).
func TestIdentityExactMultiWorker(t *testing.T) {
	t.Parallel()
	events := recordRun(t, "sublstm", enumerate.PresetFK, 2, "pcie3", 2)
	pred, err := Predict(events, Scenario{Name: "identity"})
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	for i, b := range pred.Batches {
		if b.PredictedUs != b.RecordedUs {
			t.Fatalf("batch %d (%s): predicted %v != recorded %v", i, b.Phase, b.PredictedUs, b.RecordedUs)
		}
	}
	if run, err := analyze.AnalyzeRun(pred.Events, 1); err != nil {
		t.Fatalf("analyzing predicted log: %v", err)
	} else if err := analyze.Verify(run); err != nil {
		t.Fatalf("predicted multi-worker log fails reconciliation: %v", err)
	}
}

// TestSpeedupMonotone: speeding a class up more never lengthens the
// predicted wall — exactly, for every batch, not just within epsilon.
func TestSpeedupMonotone(t *testing.T) {
	t.Parallel()
	events := recordRun(t, "sublstm", enumerate.PresetFK, 1, "", 2)
	for _, class := range []string{obs.ClassGEMM, obs.ClassEW} {
		prev := make([]float64, len(events))
		for i := range events {
			prev[i] = events[i].BatchUs
		}
		for _, f := range []float64{1, 1.3, 2, 4, 16} {
			pred, err := Predict(events, NewScenario(Perturbation{Speedups: map[string]float64{class: f}}))
			if err != nil {
				t.Fatalf("class %s x%v: %v", class, f, err)
			}
			for i, b := range pred.Batches {
				if b.PredictedUs > prev[i] {
					t.Fatalf("class %s x%v batch %d: predicted %v > previous factor's %v", class, f, i, b.PredictedUs, prev[i])
				}
				prev[i] = b.PredictedUs
			}
		}
	}
}

// TestCheckMatrixWithinTolerance is the acceptance gate: replay
// predictions land within 5% of real re-simulation across fabrics × ring
// sizes, and the identity cell is exact.
func TestCheckMatrixWithinTolerance(t *testing.T) {
	t.Parallel()
	scenarios := MatrixScenarios([]string{"pcie3", "nvlink1"}, []int{1, 2, 4})
	scenarios = append(scenarios,
		NewScenario(Perturbation{Speedups: map[string]float64{obs.ClassGEMM: 2}}),
		NewScenario(Perturbation{LaunchFactor: 0.5}),
	)
	rep, err := SelfCheck("sublstm", 4, 2, "pcie3", enumerate.PresetFK, true, 2, scenarios, 5)
	if err != nil {
		t.Fatalf("SelfCheck: %v", err)
	}
	if !rep.OK() {
		t.Fatalf("check failed:\n%s", strings.Join(rep.Failures, "\n"))
	}
	if rep.Cells[0].Scenario != "identity" || rep.Cells[0].ErrPct != 0 {
		t.Fatalf("identity cell not exact: %+v", rep.Cells[0])
	}
	if rep.BaseSimulatedUs != rep.BaseRecordedUs {
		t.Fatalf("base reproduction not exact: %+v", rep)
	}
}

// TestCheckSingleGPUSpeedups validates class-speedup and launch-overhead
// scenarios against ground truth on a single-GPU recording.
func TestCheckSingleGPUSpeedups(t *testing.T) {
	t.Parallel()
	scenarios := []Scenario{
		{Name: "identity"},
		NewScenario(Perturbation{Speedups: map[string]float64{obs.ClassGEMM: 2}}),
		NewScenario(Perturbation{Speedups: map[string]float64{obs.ClassEW: 4}}),
		NewScenario(Perturbation{LaunchFactor: 0.5}),
		NewScenario(Perturbation{LaunchFactor: 2}),
	}
	rep, err := SelfCheck("scrnn", 4, 1, "", enumerate.PresetFK, true, 2, scenarios, 5)
	if err != nil {
		t.Fatalf("SelfCheck: %v", err)
	}
	if !rep.OK() {
		t.Fatalf("check failed:\n%s", strings.Join(rep.Failures, "\n"))
	}
}

// TestPredictMatrixDeterministic: the scenario fan-out is byte-identical
// at any parallelism.
func TestPredictMatrixDeterministic(t *testing.T) {
	t.Parallel()
	events := recordRun(t, "milstm", enumerate.PresetFK, 2, "pcie3", 1)
	scenarios := MatrixScenarios([]string{"pcie3", "nvlink1"}, []int{1, 2, 8})
	scenarios = append(scenarios, NewScenario(Perturbation{Speedups: map[string]float64{obs.ClassGEMM: 2}, LaunchFactor: 0.5}))
	marshal := func(par int) []byte {
		preds, err := PredictMatrix(events, scenarios, par)
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		b, err := json.Marshal(preds)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return b
	}
	one := marshal(1)
	four := marshal(4)
	if !bytes.Equal(one, four) {
		t.Fatal("PredictMatrix output differs between -parallel 1 and 4")
	}
}

// TestBucketFactorReplay: bucket re-scaling replays (amortized) but is
// rejected by Check.
func TestBucketFactorReplay(t *testing.T) {
	t.Parallel()
	events := recordRun(t, "sublstm", enumerate.PresetFK, 2, "pcie3", 1)
	pred, err := Predict(events, NewScenario(Perturbation{BucketFactor: 2}))
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if pred.PredictedWiredUs <= 0 {
		t.Fatalf("bucket replay produced non-positive wall %v", pred.PredictedWiredUs)
	}
	if _, err := Check(events, []Scenario{NewScenario(Perturbation{BucketFactor: 2})}, 5, 1); err == nil {
		t.Fatal("Check accepted a bucket-size scenario; want replay-only rejection")
	}
}

// TestValidationErrors: malformed perturbations fail loudly with the valid
// choices in the message, never silently no-op.
func TestValidationErrors(t *testing.T) {
	t.Parallel()
	single := recordRun(t, "sublstm", enumerate.PresetF, 1, "", 1)
	cases := []struct {
		name string
		pert Perturbation
		want string
	}{
		{"unknown class", Perturbation{Speedups: map[string]float64{"gem": 2}}, "unknown kernel class"},
		{"class list in error", Perturbation{Speedups: map[string]float64{"gem": 2}}, obs.ClassGEMM},
		{"non-positive factor", Perturbation{Speedups: map[string]float64{obs.ClassGEMM: -1}}, "must be positive"},
		{"unknown fabric", Perturbation{Fabric: "infiniband"}, "unknown fabric"},
		{"fabric list in error", Perturbation{Fabric: "infiniband"}, "pcie3"},
		{"negative launch", Perturbation{LaunchFactor: -2}, "must be positive"},
		{"comm on single gpu", Perturbation{Workers: 4}, "single-GPU"},
	}
	for _, tc := range cases {
		_, err := Predict(single, Scenario{Name: tc.name, Pert: tc.pert})
		if err == nil {
			t.Fatalf("%s: no error", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	if _, err := Predict(nil, Scenario{Name: "identity"}); err == nil {
		t.Fatal("empty log: no error")
	}
}

// TestParseSpeedup covers the CLI spec grammar.
func TestParseSpeedup(t *testing.T) {
	t.Parallel()
	class, f, err := ParseSpeedup("class=gemm,factor=2")
	if err != nil || class != "gemm" || f != 2 {
		t.Fatalf("got (%q, %v, %v)", class, f, err)
	}
	class, f, err = ParseSpeedup(" factor = 0.5 , class = ew ")
	if err != nil || class != "ew" || f != 0.5 {
		t.Fatalf("got (%q, %v, %v)", class, f, err)
	}
	bad := []struct{ spec, want string }{
		{"class=gemm", "both class= and factor= are required"},
		{"factor=2", "both class= and factor= are required"},
		{"class=nope,factor=2", "unknown kernel class"},
		{"class=gemm,factor=zero", "not a number"},
		{"class=gemm,factor=0", "must be positive"},
		{"class=gemm,factor=-3", "must be positive"},
		{"class=gemm,speed=2", "unknown key"},
		{"gemm2", "expected key=value"},
	}
	for _, tc := range bad {
		if _, _, err := ParseSpeedup(tc.spec); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("spec %q: error %v does not mention %q", tc.spec, err, tc.want)
		}
	}
}

// TestScenarioNames pins the derived naming scheme.
func TestScenarioNames(t *testing.T) {
	t.Parallel()
	cases := []struct {
		pert Perturbation
		want string
	}{
		{Perturbation{}, "identity"},
		{Perturbation{LaunchFactor: 1, BucketFactor: 1}, "identity"},
		{Perturbation{Speedups: map[string]float64{"gemm": 2}}, "gemm x2"},
		{Perturbation{Speedups: map[string]float64{"gemm": 2, "ew": 1.5}}, "ew x1.5+gemm x2"},
		{Perturbation{Fabric: "nvlink1", Workers: 8}, "fabric=nvlink1+workers=8"},
		{Perturbation{Speedups: map[string]float64{"gemm": 2}, LaunchFactor: 0.5, BucketFactor: 2}, "gemm x2+launch x0.5+bucket x2"},
	}
	for _, tc := range cases {
		if got := ScenarioName(tc.pert); got != tc.want {
			t.Fatalf("ScenarioName(%+v) = %q, want %q", tc.pert, got, tc.want)
		}
	}
}

// TestMetaFromEvents: stamped logs round-trip the session facts; bare logs
// fall back to simulator defaults with HasMeta false.
func TestMetaFromEvents(t *testing.T) {
	t.Parallel()
	events := recordRun(t, "sublstm", enumerate.PresetFK, 2, "nvlink1", 1)
	meta := MetaFromEvents(events)
	if !meta.HasMeta || meta.Model != "sublstm" || meta.ModelScale != "tiny" ||
		meta.Preset != string(enumerate.PresetFK) || meta.Workers != 2 || meta.Fabric != "nvlink1" {
		t.Fatalf("meta = %+v", meta)
	}
	if meta.LaunchOverheadUs != 7 || meta.KernelSetupUs != 1.5 || meta.PerOpCPUUs != 2 {
		t.Fatalf("cost constants = %+v", meta)
	}
	bare := MetaFromEvents([]obs.TrialEvent{{Batch: 0, BatchUs: 10}})
	if bare.HasMeta || bare.Workers != 1 || bare.LaunchOverheadUs != 7 {
		t.Fatalf("bare meta = %+v", bare)
	}
}
