package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestShapeBasics(t *testing.T) {
	s := Shape{4, 8}
	if s.NumElements() != 32 {
		t.Fatalf("NumElements = %d, want 32", s.NumElements())
	}
	if s.Rows() != 4 || s.Cols() != 8 {
		t.Fatalf("Rows/Cols = %d/%d, want 4/8", s.Rows(), s.Cols())
	}
	if !s.Equal(Shape{4, 8}) || s.Equal(Shape{8, 4}) || s.Equal(Shape{4}) {
		t.Fatal("Shape.Equal misbehaves")
	}
	c := s.Clone()
	c[0] = 9
	if s[0] != 4 {
		t.Fatal("Clone aliases original")
	}
	if (Shape{}).NumElements() != 1 {
		t.Fatal("scalar shape should have one element")
	}
	if (Shape{5}).Rows() != 1 || (Shape{5}).Cols() != 5 {
		t.Fatal("vector Rows/Cols")
	}
}

func TestNewAndFromSlice(t *testing.T) {
	a := New(2, 3)
	if a.NumElements() != 6 {
		t.Fatalf("NumElements = %d", a.NumElements())
	}
	b := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	if b.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %v", b.At(1, 0))
	}
	b.Set(1, 0, 7)
	if b.Data()[2] != 7 {
		t.Fatal("Set did not write through")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong count should panic")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestCloneAndReshape(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	c := a.Clone()
	c.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares data")
	}
	r := a.Reshape(3, 2)
	if r.At(2, 1) != 6 {
		t.Fatalf("Reshape At(2,1) = %v", r.At(2, 1))
	}
	r.Set(0, 0, -1)
	if a.At(0, 0) != -1 {
		t.Fatal("Reshape should share data")
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{5, 6, 7, 8}, 2, 2)
	c := MatMul(a, b)
	want := []float64{19, 22, 43, 50}
	for i, v := range want {
		if c.Data()[i] != v {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data()[i], v)
		}
	}
}

func TestMatMulIdentityProperty(t *testing.T) {
	rng := NewRNG(7)
	f := func(seed uint64) bool {
		m := 1 + int(seed%5)
		n := 1 + int((seed>>8)%6)
		a := Randn(rng, 1, m, n)
		id := New(n, n)
		for i := 0; i < n; i++ {
			id.Set(i, i, 1)
		}
		return MaxAbsDiff(MatMul(a, id), a) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulAssociativityWithAddProperty(t *testing.T) {
	// (A+B)·C == A·C + B·C — the algebraic identity behind GEMM fusion
	// ladders; must hold to near machine precision.
	rng := NewRNG(21)
	f := func(seed uint64) bool {
		m := 1 + int(seed%4)
		k := 1 + int((seed>>4)%4)
		n := 1 + int((seed>>8)%4)
		a := Randn(rng, 1, m, k)
		b := Randn(rng, 1, m, k)
		c := Randn(rng, 1, k, n)
		lhs := MatMul(Add(a, b), c)
		rhs := Add(MatMul(a, c), MatMul(b, c))
		return MaxAbsDiff(lhs, rhs) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcatFusionEquivalenceProperty(t *testing.T) {
	// [A;B]·C == [A·C ; B·C] — horizontal GEMM fusion along the batch
	// dimension is value-preserving.
	rng := NewRNG(5)
	f := func(seed uint64) bool {
		m1 := 1 + int(seed%3)
		m2 := 1 + int((seed>>2)%3)
		k := 1 + int((seed>>4)%5)
		n := 1 + int((seed>>8)%5)
		a := Randn(rng, 1, m1, k)
		b := Randn(rng, 1, m2, k)
		c := Randn(rng, 1, k, n)
		fused := MatMul(ConcatRows(a, b), c)
		split := ConcatRows(MatMul(a, c), MatMul(b, c))
		return MaxAbsDiff(fused, split) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestColumnFusionEquivalenceProperty(t *testing.T) {
	// A·[C D] == [A·C  A·D] — fusing along the output dimension.
	rng := NewRNG(13)
	f := func(seed uint64) bool {
		m := 1 + int(seed%3)
		k := 1 + int((seed>>2)%5)
		n1 := 1 + int((seed>>4)%4)
		n2 := 1 + int((seed>>8)%4)
		a := Randn(rng, 1, m, k)
		c := Randn(rng, 1, k, n1)
		d := Randn(rng, 1, k, n2)
		fused := MatMul(a, ConcatCols(c, d))
		split := ConcatCols(MatMul(a, c), MatMul(a, d))
		return MaxAbsDiff(fused, split) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTranspose(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	at := Transpose(a)
	if !at.Shape().Equal(Shape{3, 2}) {
		t.Fatalf("shape %v", at.Shape())
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatal("transpose values wrong")
	}
	if MaxAbsDiff(Transpose(at), a) != 0 {
		t.Fatal("double transpose is not identity")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, -2, 3, -4}, 2, 2)
	b := FromSlice([]float64{10, 20, 30, 40}, 2, 2)
	if got := Add(a, b).Data()[1]; got != 18 {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(b, a).Data()[3]; got != 44 {
		t.Fatalf("Sub = %v", got)
	}
	if got := Mul(a, b).Data()[2]; got != 90 {
		t.Fatalf("Mul = %v", got)
	}
	if got := Scale(a, 2).Data()[0]; got != 2 {
		t.Fatalf("Scale = %v", got)
	}
	if got := ReLU(a).Data(); got[1] != 0 || got[2] != 3 {
		t.Fatalf("ReLU = %v", got)
	}
	if got := Sigmoid(New(1, 1)).Data()[0]; got != 0.5 {
		t.Fatalf("Sigmoid(0) = %v", got)
	}
	if got := Tanh(New(1, 1)).Data()[0]; got != 0 {
		t.Fatalf("Tanh(0) = %v", got)
	}
}

func TestAddBias(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	bias := FromSlice([]float64{10, 20}, 1, 2)
	got := AddBias(a, bias)
	want := []float64{11, 22, 13, 24}
	for i := range want {
		if got.Data()[i] != want[i] {
			t.Fatalf("AddBias[%d] = %v, want %v", i, got.Data()[i], want[i])
		}
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := NewRNG(3)
	a := Randn(rng, 5, 4, 7)
	s := Softmax(a)
	for i := 0; i < 4; i++ {
		sum := 0.0
		for j := 0; j < 7; j++ {
			v := s.At(i, j)
			if v < 0 || v > 1 {
				t.Fatalf("softmax out of range: %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestSoftmaxShiftInvarianceProperty(t *testing.T) {
	rng := NewRNG(11)
	f := func(shift float64) bool {
		if math.IsNaN(shift) || math.Abs(shift) > 50 {
			return true
		}
		a := Randn(rng, 1, 3, 5)
		b := elementwise1(a, func(x float64) float64 { return x + shift })
		return MaxAbsDiff(Softmax(a), Softmax(b)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcatAndSlice(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{5, 6}, 2, 1)
	cc := ConcatCols(a, b)
	if !cc.Shape().Equal(Shape{2, 3}) || cc.At(1, 2) != 6 {
		t.Fatalf("ConcatCols got %v %v", cc.Shape(), cc.Data())
	}
	back := SliceCols(cc, 0, 2)
	if MaxAbsDiff(back, a) != 0 {
		t.Fatal("SliceCols does not invert ConcatCols")
	}
	cr := ConcatRows(a, FromSlice([]float64{7, 8}, 1, 2))
	if !cr.Shape().Equal(Shape{3, 2}) || cr.At(2, 1) != 8 {
		t.Fatalf("ConcatRows got %v", cr.Data())
	}
	if MaxAbsDiff(SliceRows(cr, 0, 2), a) != 0 {
		t.Fatal("SliceRows does not invert ConcatRows")
	}
}

func TestLookup(t *testing.T) {
	table := FromSlice([]float64{0, 0, 1, 1, 2, 2}, 3, 2)
	ids := FromSlice([]float64{2, 0, 1}, 3, 1)
	got := Lookup(table, ids)
	want := []float64{2, 2, 0, 0, 1, 1}
	for i := range want {
		if got.Data()[i] != want[i] {
			t.Fatalf("Lookup = %v", got.Data())
		}
	}
}

func TestSumAndSumRows(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	if Sum(a).Data()[0] != 10 {
		t.Fatalf("Sum = %v", Sum(a).Data()[0])
	}
	sr := SumRows(a)
	if sr.At(0, 0) != 4 || sr.At(0, 1) != 6 {
		t.Fatalf("SumRows = %v", sr.Data())
	}
}

func TestCrossEntropy(t *testing.T) {
	// Uniform logits over n classes have loss ln(n).
	logits := New(2, 4)
	targets := FromSlice([]float64{0, 3}, 2, 1)
	got := CrossEntropy(logits, targets).Data()[0]
	if math.Abs(got-math.Log(4)) > 1e-12 {
		t.Fatalf("CrossEntropy = %v, want ln 4", got)
	}
}

func TestCrossEntropyDecreasesWithCorrectLogit(t *testing.T) {
	logits := New(1, 3)
	targets := FromSlice([]float64{1}, 1, 1)
	base := CrossEntropy(logits, targets).Data()[0]
	logits.Set(0, 1, 2)
	better := CrossEntropy(logits, targets).Data()[0]
	if better >= base {
		t.Fatalf("loss did not decrease: %v -> %v", base, better)
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 1, 2)
	b := FromSlice([]float64{1, 5}, 1, 2)
	if MaxAbsDiff(a, b) != 3 {
		t.Fatalf("MaxAbsDiff = %v", MaxAbsDiff(a, b))
	}
	if !math.IsInf(MaxAbsDiff(a, New(2, 1)), 1) {
		t.Fatal("shape mismatch should be +Inf")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRNG(0).Uint64() == 0 {
		t.Fatal("zero seed should be remapped")
	}
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		n := r.Intn(17)
		if n < 0 || n >= 17 {
			t.Fatalf("Intn out of range: %d", n)
		}
	}
}

func TestFill(t *testing.T) {
	a := New(2, 2).Fill(3)
	for _, v := range a.Data() {
		if v != 3 {
			t.Fatal("Fill failed")
		}
	}
}
