// Package tensor provides the CPU reference tensor math used by the Astra
// reproduction. Astra's optimizations are value-preserving: every schedule
// the custom-wirer explores must compute exactly the same values as the
// naive dispatch order. This package is the oracle for that property — it
// executes graphs on the host, with no performance model attached.
//
// Tensors are dense, row-major, float64. The simulated device (package
// gpusim) tracks timing only; values always flow through this package.
package tensor

import (
	"fmt"
	"math"
)

// Shape describes the extent of each tensor dimension, outermost first.
type Shape []int

// NumElements returns the total element count of the shape. An empty shape
// denotes a scalar and has one element.
func (s Shape) NumElements() int {
	n := 1
	for _, d := range s {
		n *= d
	}
	return n
}

// Equal reports whether two shapes have identical rank and extents.
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the shape.
func (s Shape) Clone() Shape {
	c := make(Shape, len(s))
	copy(c, s)
	return c
}

// String renders the shape as "[d0 d1 ...]".
func (s Shape) String() string { return fmt.Sprint([]int(s)) }

// Rows returns the leading dimension of a matrix-like shape, treating
// scalars and vectors as a single row.
func (s Shape) Rows() int {
	if len(s) < 2 {
		return 1
	}
	return s[0]
}

// Cols returns the trailing dimension, treating scalars as one column.
func (s Shape) Cols() int {
	if len(s) == 0 {
		return 1
	}
	return s[len(s)-1]
}

// Tensor is a dense row-major array of float64 with an explicit shape.
type Tensor struct {
	shape Shape
	data  []float64
}

// New returns a zero-filled tensor of the given shape.
func New(shape ...int) *Tensor {
	s := Shape(shape).Clone()
	return &Tensor{shape: s, data: make([]float64, s.NumElements())}
}

// FromSlice wraps data (not copied) in a tensor of the given shape. It
// panics if the element count does not match.
func FromSlice(data []float64, shape ...int) *Tensor {
	s := Shape(shape).Clone()
	if s.NumElements() != len(data) {
		panic(fmt.Sprintf("tensor: %d elements for shape %v", len(data), s))
	}
	return &Tensor{shape: s, data: data}
}

// Shape returns the tensor's shape. Callers must not mutate it.
func (t *Tensor) Shape() Shape { return t.shape }

// Data returns the backing slice. Callers may read and write elements but
// must not resize.
func (t *Tensor) Data() []float64 { return t.data }

// NumElements returns the total element count.
func (t *Tensor) NumElements() int { return len(t.data) }

// At returns the element at row i, column j of a matrix-shaped tensor.
func (t *Tensor) At(i, j int) float64 { return t.data[i*t.shape.Cols()+j] }

// Set assigns the element at row i, column j of a matrix-shaped tensor.
func (t *Tensor) Set(i, j int, v float64) { t.data[i*t.shape.Cols()+j] = v }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// Reshape returns a view with a new shape sharing the same data. It panics
// if the element counts differ.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	s := Shape(shape).Clone()
	if s.NumElements() != len(t.data) {
		panic(fmt.Sprintf("tensor: reshape %v to %v", t.shape, s))
	}
	return &Tensor{shape: s, data: t.data}
}

// Fill sets every element to v and returns the tensor.
func (t *Tensor) Fill(v float64) *Tensor {
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// RNG is a small deterministic PRNG (xorshift64*) used to build reproducible
// test inputs without importing math/rand state into substrate packages.
type RNG struct{ state uint64 }

// NewRNG seeds a deterministic generator. A zero seed is remapped so the
// generator never degenerates.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Reseed resets the generator in place to the given seed (zero remapped as
// in NewRNG) — the allocation-free counterpart of NewRNG for hot loops that
// reseed per mini-batch.
func (r *RNG) Reseed(seed uint64) {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	r.state = seed
}

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn on non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns an approximately standard-normal value (sum of uniforms).
func (r *RNG) Norm() float64 {
	s := 0.0
	for i := 0; i < 12; i++ {
		s += r.Float64()
	}
	return s - 6
}

// Randn fills a new tensor of the given shape with scaled pseudo-normal
// values drawn from rng.
func Randn(rng *RNG, scale float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = rng.Norm() * scale
	}
	return t
}

// MatMul returns a × b for matrix-shaped tensors [m,k] × [k,n] → [m,n].
func MatMul(a, b *Tensor) *Tensor {
	m, k := a.shape.Rows(), a.shape.Cols()
	k2, n := b.shape.Rows(), b.shape.Cols()
	if k != k2 {
		panic(fmt.Sprintf("tensor: matmul %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.data[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// Transpose returns the matrix transpose of a matrix-shaped tensor.
func Transpose(a *Tensor) *Tensor {
	m, n := a.shape.Rows(), a.shape.Cols()
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = a.data[i*n+j]
		}
	}
	return out
}

func elementwise2(a, b *Tensor, f func(x, y float64) float64) *Tensor {
	if !a.shape.Equal(b.shape) {
		panic(fmt.Sprintf("tensor: elementwise %v vs %v", a.shape, b.shape))
	}
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = f(a.data[i], b.data[i])
	}
	return out
}

func elementwise1(a *Tensor, f func(x float64) float64) *Tensor {
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = f(a.data[i])
	}
	return out
}

// Add returns a + b elementwise.
func Add(a, b *Tensor) *Tensor {
	return elementwise2(a, b, func(x, y float64) float64 { return x + y })
}

// Sub returns a − b elementwise.
func Sub(a, b *Tensor) *Tensor {
	return elementwise2(a, b, func(x, y float64) float64 { return x - y })
}

// Mul returns a ⊙ b elementwise.
func Mul(a, b *Tensor) *Tensor {
	return elementwise2(a, b, func(x, y float64) float64 { return x * y })
}

// Scale returns s·a.
func Scale(a *Tensor, s float64) *Tensor {
	return elementwise1(a, func(x float64) float64 { return x * s })
}

// Sigmoid returns 1/(1+e^−x) elementwise.
func Sigmoid(a *Tensor) *Tensor {
	return elementwise1(a, func(x float64) float64 { return 1 / (1 + math.Exp(-x)) })
}

// Tanh returns tanh(x) elementwise.
func Tanh(a *Tensor) *Tensor { return elementwise1(a, math.Tanh) }

// ReLU returns max(0, x) elementwise.
func ReLU(a *Tensor) *Tensor {
	return elementwise1(a, func(x float64) float64 {
		if x > 0 {
			return x
		}
		return 0
	})
}

// AddBias adds a [1,n] (or [n]) bias row to every row of a [m,n] matrix.
func AddBias(a, bias *Tensor) *Tensor {
	m, n := a.shape.Rows(), a.shape.Cols()
	if bias.NumElements() != n {
		panic(fmt.Sprintf("tensor: bias %v for %v", bias.shape, a.shape))
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[i*n+j] = a.data[i*n+j] + bias.data[j]
		}
	}
	return out
}

// Softmax returns the row-wise softmax of a matrix-shaped tensor.
func Softmax(a *Tensor) *Tensor {
	m, n := a.shape.Rows(), a.shape.Cols()
	out := New(m, n)
	for i := 0; i < m; i++ {
		row := a.data[i*n : (i+1)*n]
		max := row[0]
		for _, v := range row {
			if v > max {
				max = v
			}
		}
		sum := 0.0
		orow := out.data[i*n : (i+1)*n]
		for j, v := range row {
			e := math.Exp(v - max)
			orow[j] = e
			sum += e
		}
		for j := range orow {
			orow[j] /= sum
		}
	}
	return out
}

// ConcatCols concatenates matrix-shaped tensors with equal row counts along
// the column dimension.
func ConcatCols(parts ...*Tensor) *Tensor {
	if len(parts) == 0 {
		panic("tensor: ConcatCols with no parts")
	}
	m := parts[0].shape.Rows()
	total := 0
	for _, p := range parts {
		if p.shape.Rows() != m {
			panic("tensor: ConcatCols row mismatch")
		}
		total += p.shape.Cols()
	}
	out := New(m, total)
	off := 0
	for _, p := range parts {
		n := p.shape.Cols()
		for i := 0; i < m; i++ {
			copy(out.data[i*total+off:i*total+off+n], p.data[i*n:(i+1)*n])
		}
		off += n
	}
	return out
}

// ConcatRows stacks matrix-shaped tensors with equal column counts along the
// row dimension.
func ConcatRows(parts ...*Tensor) *Tensor {
	if len(parts) == 0 {
		panic("tensor: ConcatRows with no parts")
	}
	n := parts[0].shape.Cols()
	total := 0
	for _, p := range parts {
		if p.shape.Cols() != n {
			panic("tensor: ConcatRows col mismatch")
		}
		total += p.shape.Rows()
	}
	out := New(total, n)
	off := 0
	for _, p := range parts {
		copy(out.data[off*n:], p.data)
		off += p.shape.Rows()
	}
	return out
}

// SliceCols returns columns [from, to) of a matrix-shaped tensor as a copy.
func SliceCols(a *Tensor, from, to int) *Tensor {
	m, n := a.shape.Rows(), a.shape.Cols()
	if from < 0 || to > n || from > to {
		panic(fmt.Sprintf("tensor: SliceCols [%d,%d) of %v", from, to, a.shape))
	}
	w := to - from
	out := New(m, w)
	for i := 0; i < m; i++ {
		copy(out.data[i*w:(i+1)*w], a.data[i*n+from:i*n+to])
	}
	return out
}

// SliceRows returns rows [from, to) of a matrix-shaped tensor as a copy.
func SliceRows(a *Tensor, from, to int) *Tensor {
	m, n := a.shape.Rows(), a.shape.Cols()
	if from < 0 || to > m || from > to {
		panic(fmt.Sprintf("tensor: SliceRows [%d,%d) of %v", from, to, a.shape))
	}
	out := New(to-from, n)
	copy(out.data, a.data[from*n:to*n])
	return out
}

// Lookup gathers rows of table indexed by ids (a [m,1] tensor of integral
// values), producing [m, cols(table)]. It models an embedding lookup.
func Lookup(table, ids *Tensor) *Tensor {
	rows, n := table.shape.Rows(), table.shape.Cols()
	m := ids.NumElements()
	out := New(m, n)
	for i := 0; i < m; i++ {
		id := int(ids.data[i])
		if id < 0 || id >= rows {
			panic(fmt.Sprintf("tensor: lookup id %d out of %d", id, rows))
		}
		copy(out.data[i*n:(i+1)*n], table.data[id*n:(id+1)*n])
	}
	return out
}

// Sum returns the sum of all elements as a [1,1] tensor.
func Sum(a *Tensor) *Tensor {
	s := 0.0
	for _, v := range a.data {
		s += v
	}
	out := New(1, 1)
	out.data[0] = s
	return out
}

// SumRows reduces a [m,n] matrix to a [1,n] row of column sums.
func SumRows(a *Tensor) *Tensor {
	m, n := a.shape.Rows(), a.shape.Cols()
	out := New(1, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j] += a.data[i*n+j]
		}
	}
	return out
}

// CrossEntropy computes the mean negative log-likelihood of target rows
// under row-wise softmax of logits. targets holds one class id per row.
// It returns a [1,1] tensor.
func CrossEntropy(logits, targets *Tensor) *Tensor {
	probs := Softmax(logits)
	m, n := probs.shape.Rows(), probs.shape.Cols()
	if targets.NumElements() != m {
		panic(fmt.Sprintf("tensor: %d targets for %d rows", targets.NumElements(), m))
	}
	loss := 0.0
	for i := 0; i < m; i++ {
		c := int(targets.data[i])
		if c < 0 || c >= n {
			panic(fmt.Sprintf("tensor: target class %d out of %d", c, n))
		}
		loss -= math.Log(math.Max(probs.data[i*n+c], 1e-300))
	}
	out := New(1, 1)
	out.data[0] = loss / float64(m)
	return out
}

// MaxAbsDiff returns the largest absolute elementwise difference between two
// same-shaped tensors; it is the metric used by value-preservation tests.
func MaxAbsDiff(a, b *Tensor) float64 {
	if !a.shape.Equal(b.shape) {
		return math.Inf(1)
	}
	max := 0.0
	for i := range a.data {
		d := math.Abs(a.data[i] - b.data[i])
		if d > max {
			max = d
		}
	}
	return max
}
