// Package graph defines the data-flow-graph IR that Astra compiles and the
// runtime custom-wires. Nodes are tensor operators (the things that become
// simulated GPU kernels); values are the tensors flowing between them.
//
// The IR mirrors what the paper extracts from PyTorch's tracer: a flat list
// of SSA-style assignments such as
//
//	%10 = mm(%1, %5)
//
// annotated with provenance (which layer and timestep of the model emitted
// the node) that the enumerator uses to bound fusion groups and build
// equivalence classes.
package graph

import (
	"fmt"
	"sort"

	"astra/internal/tensor"
)

// Op identifies a tensor operator.
type Op int

// Operator kinds. MatMul nodes are the GEMMs that dominate training time
// and are the unit of fusion and kernel-library adaptation; the *Grad ops
// are the fused backward elementwise kernels a real framework ships.
const (
	OpInput Op = iota
	OpParam
	OpConst
	OpMatMul
	OpAdd
	OpSub
	OpMul
	OpScale
	OpSigmoid
	OpTanh
	OpReLU
	OpAddBias
	OpSoftmax
	OpConcatCols
	OpConcatRows
	OpSliceCols
	OpSliceRows
	OpTranspose
	OpLookup
	OpCrossEntropy
	OpSumRows
	OpSigmoidGrad
	OpTanhGrad
	OpReLUGrad
	OpCrossEntropyGrad
	OpLookupGrad
	OpSoftmaxGrad
	OpPadCols
	OpPadRows
	OpBroadcastRows
	OpScaleCols
	OpRowSums
	OpBroadcastCols
	opCount
)

var opNames = [...]string{
	OpInput:            "input",
	OpParam:            "param",
	OpConst:            "const",
	OpMatMul:           "mm",
	OpAdd:              "add",
	OpSub:              "sub",
	OpMul:              "mul",
	OpScale:            "scale",
	OpSigmoid:          "sigmoid",
	OpTanh:             "tanh",
	OpReLU:             "relu",
	OpAddBias:          "add_bias",
	OpSoftmax:          "softmax",
	OpConcatCols:       "concat_cols",
	OpConcatRows:       "concat_rows",
	OpSliceCols:        "slice_cols",
	OpSliceRows:        "slice_rows",
	OpTranspose:        "t",
	OpLookup:           "lookup",
	OpCrossEntropy:     "cross_entropy",
	OpSumRows:          "sum_rows",
	OpSigmoidGrad:      "sigmoid_grad",
	OpTanhGrad:         "tanh_grad",
	OpReLUGrad:         "relu_grad",
	OpCrossEntropyGrad: "cross_entropy_grad",
	OpLookupGrad:       "lookup_grad",
	OpSoftmaxGrad:      "softmax_grad",
	OpPadCols:          "pad_cols",
	OpPadRows:          "pad_rows",
	OpBroadcastRows:    "broadcast_rows",
	OpScaleCols:        "scale_cols",
	OpRowSums:          "row_sums",
	OpBroadcastCols:    "broadcast_cols",
}

// String returns the trace mnemonic for the operator.
func (o Op) String() string {
	if o < 0 || int(o) >= len(opNames) || opNames[o] == "" {
		return fmt.Sprintf("op(%d)", int(o))
	}
	return opNames[o]
}

// OpFromString parses a trace mnemonic back to an Op.
func OpFromString(s string) (Op, bool) {
	for i, n := range opNames {
		if n == s {
			return Op(i), true
		}
	}
	return 0, false
}

// IsElementwise reports whether the op touches each element independently,
// which makes it a candidate for elementwise fusion (§5.3 of the paper).
func (o Op) IsElementwise() bool {
	switch o {
	case OpAdd, OpSub, OpMul, OpScale, OpSigmoid, OpTanh, OpReLU,
		OpSigmoidGrad, OpTanhGrad, OpReLUGrad, OpAddBias:
		return true
	}
	return false
}

// Pass distinguishes forward from backward nodes; the paper notes roughly
// two-thirds of training compute is in the backward pass.
type Pass int

// Pass values.
const (
	Forward Pass = iota
	Backward
)

// String names the pass.
func (p Pass) String() string {
	if p == Backward {
		return "bwd"
	}
	return "fwd"
}

// Provenance records where in the model source a node came from. The
// enumerator only fuses GEMMs with the same provenance scope (the paper's
// "same provenance wrt GEMM nodes") and uses (Scope, Timestep) to find the
// repeated per-timestep structure of recurrent models.
type Provenance struct {
	Scope    string // dotted model path, e.g. "lstm0.cell"
	Timestep int    // recurrent step index, -1 if not in a recurrence
	Pass     Pass
}

// Value is an SSA tensor edge.
type Value struct {
	ID       int
	Shape    tensor.Shape
	Producer *Node // nil for inputs, params and consts
	Name     string
	// ConstData holds the tensor for OpConst producers' outputs as well
	// as for parameter initial values; nil otherwise.
	ConstData *tensor.Tensor
}

// String renders the SSA name, e.g. "%12".
func (v *Value) String() string { return fmt.Sprintf("%%%d", v.ID) }

// Attr carries the small amount of per-node static configuration.
type Attr struct {
	Scalar float64 // OpScale factor
	Lo, Hi int     // OpSliceCols/OpSliceRows bounds
	N      int     // OpLookupGrad table rows
}

// Node is one operator instance.
type Node struct {
	ID     int
	Op     Op
	Inputs []*Value
	Out    *Value
	Attr   Attr
	Prov   Provenance
}

// String renders the node in the paper's trace format.
func (n *Node) String() string {
	s := fmt.Sprintf("%s = %s(", n.Out, n.Op)
	for i, in := range n.Inputs {
		if i > 0 {
			s += ", "
		}
		s += in.String()
	}
	return s + ")"
}

// Flops estimates the floating-point work of the node; the enumerator uses
// this to carve super-epochs (§4.5.3) and balance streams (§4.8).
func (n *Node) Flops() int64 {
	switch n.Op {
	case OpMatMul:
		m := int64(n.Inputs[0].Shape.Rows())
		k := int64(n.Inputs[0].Shape.Cols())
		nn := int64(n.Inputs[1].Shape.Cols())
		return 2 * m * k * nn
	case OpInput, OpParam, OpConst:
		return 0
	case OpSoftmax, OpCrossEntropy, OpCrossEntropyGrad:
		return 5 * int64(n.Inputs[0].Shape.NumElements())
	default:
		if n.Out != nil {
			return int64(n.Out.Shape.NumElements())
		}
		return 0
	}
}

// Bytes estimates the memory traffic of the node (inputs read + output
// written), in elements; kernel cost models convert to time.
func (n *Node) Bytes() int64 {
	var b int64
	for _, in := range n.Inputs {
		b += int64(in.Shape.NumElements())
	}
	if n.Out != nil {
		b += int64(n.Out.Shape.NumElements())
	}
	return b * 8
}

// Graph is a whole training-step program: forward pass, loss, and (after
// autodiff) the backward pass, in emission order, which is a valid
// topological order.
type Graph struct {
	Nodes  []*Node
	Values []*Value
	Inputs []*Value
	Params []*Value
	Loss   *Value
	// Grads maps a parameter value to the value holding its gradient.
	Grads map[*Value]*Value

	nextValueID int
	nextNodeID  int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{Grads: make(map[*Value]*Value)}
}

// NewValue allocates a fresh SSA value with the given shape.
func (g *Graph) NewValue(shape tensor.Shape, name string) *Value {
	v := &Value{ID: g.nextValueID, Shape: shape.Clone(), Name: name}
	g.nextValueID++
	g.Values = append(g.Values, v)
	return v
}

// addValueWithID creates a value carrying an explicit ID; the trace parser
// uses it so reconstructed graphs keep their original SSA numbering.
func (g *Graph) addValueWithID(id int, shape tensor.Shape, name string) *Value {
	v := &Value{ID: id, Shape: shape.Clone(), Name: name}
	if id >= g.nextValueID {
		g.nextValueID = id + 1
	}
	g.Values = append(g.Values, v)
	return v
}

// addNodeWithOutID appends a node whose output keeps an explicit value ID;
// shape is inferred from the operator. Unlike AddNode it returns an error on
// operator misuse: the trace parser feeds it untrusted input.
func (g *Graph) addNodeWithOutID(outID int, op Op, prov Provenance, attr Attr, inputs ...*Value) (*Value, error) {
	shape, err := InferShape(op, attr, inputs)
	if err != nil {
		return nil, err
	}
	out := g.addValueWithID(outID, shape, "")
	n := &Node{ID: g.nextNodeID, Op: op, Inputs: inputs, Out: out, Attr: attr, Prov: prov}
	g.nextNodeID++
	out.Producer = n
	g.Nodes = append(g.Nodes, n)
	return out, nil
}

// Input declares a per-mini-batch input tensor (e.g. token ids, targets).
func (g *Graph) Input(name string, shape ...int) *Value {
	v := g.NewValue(shape, name)
	g.Inputs = append(g.Inputs, v)
	return v
}

// Param declares a trainable parameter with an initial value.
func (g *Graph) Param(name string, init *tensor.Tensor) *Value {
	v := g.NewValue(init.Shape(), name)
	v.ConstData = init
	g.Params = append(g.Params, v)
	return v
}

// Const declares a constant tensor.
func (g *Graph) Const(name string, data *tensor.Tensor) *Value {
	v := g.NewValue(data.Shape(), name)
	v.ConstData = data
	return v
}

// AddNode appends an operator node computing a new value and returns that
// value. Shape inference panics on operator misuse: graphs are built by
// model code under test, so a malformed graph is a programming error.
func (g *Graph) AddNode(op Op, prov Provenance, attr Attr, inputs ...*Value) *Value {
	out := g.NewValue(inferShape(op, attr, inputs), "")
	n := &Node{ID: g.nextNodeID, Op: op, Inputs: inputs, Out: out, Attr: attr, Prov: prov}
	g.nextNodeID++
	out.Producer = n
	g.Nodes = append(g.Nodes, n)
	return out
}

// inferShape is the panicking form of InferShape used by the builder API,
// where a malformed graph is a programming error in model code under test.
func inferShape(op Op, attr Attr, in []*Value) tensor.Shape {
	s, err := InferShape(op, attr, in)
	if err != nil {
		panic(err.Error())
	}
	return s
}

// InferShape computes the output shape of op applied to the given inputs,
// or an error describing the operator misuse. It is the single source of
// truth for operator shape semantics: the builder panics on its errors, the
// trace parser returns them, and the plan verifier re-checks every edge of a
// finished graph against it.
func InferShape(op Op, attr Attr, in []*Value) (tensor.Shape, error) {
	if err := checkArity(op, in); err != nil {
		return nil, err
	}
	switch op {
	case OpMatMul:
		if in[0].Shape.Cols() != in[1].Shape.Rows() {
			return nil, fmt.Errorf("graph: mm %v x %v", in[0].Shape, in[1].Shape)
		}
		return tensor.Shape{in[0].Shape.Rows(), in[1].Shape.Cols()}, nil
	case OpAdd, OpSub, OpMul:
		if !in[0].Shape.Equal(in[1].Shape) {
			return nil, fmt.Errorf("graph: %v shapes %v vs %v", op, in[0].Shape, in[1].Shape)
		}
		return in[0].Shape.Clone(), nil
	case OpScale, OpSigmoid, OpTanh, OpReLU, OpSoftmax:
		return in[0].Shape.Clone(), nil
	case OpAddBias:
		if in[1].Shape.NumElements() != in[0].Shape.Cols() {
			return nil, fmt.Errorf("graph: add_bias %v + %v", in[0].Shape, in[1].Shape)
		}
		return in[0].Shape.Clone(), nil
	case OpConcatCols:
		cols := 0
		for _, v := range in {
			if v.Shape.Rows() != in[0].Shape.Rows() {
				return nil, fmt.Errorf("graph: concat_cols row mismatch")
			}
			cols += v.Shape.Cols()
		}
		return tensor.Shape{in[0].Shape.Rows(), cols}, nil
	case OpConcatRows:
		rows := 0
		for _, v := range in {
			if v.Shape.Cols() != in[0].Shape.Cols() {
				return nil, fmt.Errorf("graph: concat_rows col mismatch")
			}
			rows += v.Shape.Rows()
		}
		return tensor.Shape{rows, in[0].Shape.Cols()}, nil
	case OpSliceCols:
		if attr.Lo < 0 || attr.Hi > in[0].Shape.Cols() || attr.Lo > attr.Hi {
			return nil, fmt.Errorf("graph: slice_cols [%d,%d) of %v", attr.Lo, attr.Hi, in[0].Shape)
		}
		return tensor.Shape{in[0].Shape.Rows(), attr.Hi - attr.Lo}, nil
	case OpSliceRows:
		if attr.Lo < 0 || attr.Hi > in[0].Shape.Rows() || attr.Lo > attr.Hi {
			return nil, fmt.Errorf("graph: slice_rows [%d,%d) of %v", attr.Lo, attr.Hi, in[0].Shape)
		}
		return tensor.Shape{attr.Hi - attr.Lo, in[0].Shape.Cols()}, nil
	case OpTranspose:
		return tensor.Shape{in[0].Shape.Cols(), in[0].Shape.Rows()}, nil
	case OpLookup:
		return tensor.Shape{in[1].Shape.NumElements(), in[0].Shape.Cols()}, nil
	case OpCrossEntropy:
		return tensor.Shape{1, 1}, nil
	case OpSumRows:
		return tensor.Shape{1, in[0].Shape.Cols()}, nil
	case OpSigmoidGrad, OpTanhGrad, OpReLUGrad:
		if !in[0].Shape.Equal(in[1].Shape) {
			return nil, fmt.Errorf("graph: %v shapes %v vs %v", op, in[0].Shape, in[1].Shape)
		}
		return in[0].Shape.Clone(), nil
	case OpCrossEntropyGrad:
		return in[0].Shape.Clone(), nil
	case OpLookupGrad:
		if attr.N <= 0 {
			return nil, fmt.Errorf("graph: lookup_grad table rows n=%d", attr.N)
		}
		return tensor.Shape{attr.N, in[1].Shape.Cols()}, nil
	case OpSoftmaxGrad:
		if !in[0].Shape.Equal(in[1].Shape) {
			return nil, fmt.Errorf("graph: softmax_grad shapes %v vs %v", in[0].Shape, in[1].Shape)
		}
		return in[0].Shape.Clone(), nil
	case OpPadCols:
		if attr.Lo < 0 || attr.Lo+in[0].Shape.Cols() > attr.N {
			return nil, fmt.Errorf("graph: pad_cols lo=%d n=%d of %v", attr.Lo, attr.N, in[0].Shape)
		}
		return tensor.Shape{in[0].Shape.Rows(), attr.N}, nil
	case OpPadRows:
		if attr.Lo < 0 || attr.Lo+in[0].Shape.Rows() > attr.N {
			return nil, fmt.Errorf("graph: pad_rows lo=%d n=%d of %v", attr.Lo, attr.N, in[0].Shape)
		}
		return tensor.Shape{attr.N, in[0].Shape.Cols()}, nil
	case OpBroadcastRows:
		if in[0].Shape.Rows() != 1 {
			return nil, fmt.Errorf("graph: broadcast_rows of %v", in[0].Shape)
		}
		return tensor.Shape{attr.N, in[0].Shape.Cols()}, nil
	case OpScaleCols:
		if in[1].Shape.Cols() != 1 || in[1].Shape.Rows() != in[0].Shape.Rows() {
			return nil, fmt.Errorf("graph: scale_cols %v by %v", in[0].Shape, in[1].Shape)
		}
		return in[0].Shape.Clone(), nil
	case OpRowSums:
		return tensor.Shape{in[0].Shape.Rows(), 1}, nil
	case OpBroadcastCols:
		if in[0].Shape.Cols() != 1 {
			return nil, fmt.Errorf("graph: broadcast_cols of %v", in[0].Shape)
		}
		return tensor.Shape{in[0].Shape.Rows(), attr.N}, nil
	default:
		return nil, fmt.Errorf("graph: InferShape for %v", op)
	}
}

// checkArity validates the input count for an operator.
func checkArity(op Op, in []*Value) error {
	want := -1 // -1: variadic with a minimum of 2 (the concats)
	switch op {
	case OpScale, OpSigmoid, OpTanh, OpReLU, OpSoftmax, OpSliceCols, OpSliceRows,
		OpTranspose, OpSumRows, OpPadCols, OpPadRows, OpBroadcastRows, OpRowSums,
		OpBroadcastCols:
		want = 1
	case OpMatMul, OpAdd, OpSub, OpMul, OpAddBias, OpLookup, OpCrossEntropy,
		OpSigmoidGrad, OpTanhGrad, OpReLUGrad, OpCrossEntropyGrad, OpLookupGrad,
		OpSoftmaxGrad, OpScaleCols:
		want = 2
	}
	if want < 0 {
		if len(in) < 2 {
			return fmt.Errorf("graph: %v needs >=2 inputs, got %d", op, len(in))
		}
		return nil
	}
	if len(in) != want {
		return fmt.Errorf("graph: %v expects %d inputs, got %d", op, want, len(in))
	}
	for _, v := range in {
		if v == nil {
			return fmt.Errorf("graph: %v with nil input", op)
		}
	}
	return nil
}

// Consumers returns, for every value, the nodes that read it, in node order.
func (g *Graph) Consumers() map[*Value][]*Node {
	c := make(map[*Value][]*Node, len(g.Values))
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			c[in] = append(c[in], n)
		}
	}
	return c
}

// NodeByOutput returns a map from value to producing node.
func (g *Graph) NodeByOutput() map[*Value]*Node {
	m := make(map[*Value]*Node, len(g.Nodes))
	for _, n := range g.Nodes {
		m[n.Out] = n
	}
	return m
}

// Validate checks structural invariants: emission order is topological,
// every input of a node is either a leaf (input/param/const) or produced by
// an earlier node, and shapes agree with operator semantics.
func (g *Graph) Validate() error {
	seen := make(map[*Value]bool, len(g.Values))
	for _, v := range g.Inputs {
		seen[v] = true
	}
	for _, v := range g.Params {
		seen[v] = true
	}
	for _, v := range g.Values {
		if v.ConstData != nil {
			seen[v] = true
		}
	}
	for i, n := range g.Nodes {
		for _, in := range n.Inputs {
			if !seen[in] {
				return fmt.Errorf("graph: node %d (%s) reads %s before it is defined", i, n, in)
			}
		}
		want, err := InferShape(n.Op, n.Attr, n.Inputs)
		if err != nil {
			return fmt.Errorf("graph: node %d (%s): %w", i, n, err)
		}
		if !want.Equal(n.Out.Shape) {
			return fmt.Errorf("graph: node %d (%s) output shape %v, want %v", i, n, n.Out.Shape, want)
		}
		seen[n.Out] = true
	}
	return nil
}

// TotalFlops sums the static flop estimate over all nodes.
func (g *Graph) TotalFlops() int64 {
	var f int64
	for _, n := range g.Nodes {
		f += n.Flops()
	}
	return f
}

// MatMulNodes returns the GEMM nodes in emission order.
func (g *Graph) MatMulNodes() []*Node {
	var out []*Node
	for _, n := range g.Nodes {
		if n.Op == OpMatMul {
			out = append(out, n)
		}
	}
	return out
}

// Stats summarises the graph for reports.
type Stats struct {
	Nodes, MatMuls, Elementwise int
	Values                      int
	TotalFlops                  int64
}

// Stats computes summary statistics.
func (g *Graph) Stats() Stats {
	s := Stats{Nodes: len(g.Nodes), Values: len(g.Values), TotalFlops: g.TotalFlops()}
	for _, n := range g.Nodes {
		switch {
		case n.Op == OpMatMul:
			s.MatMuls++
		case n.Op.IsElementwise():
			s.Elementwise++
		}
	}
	return s
}

// ScopeList returns the distinct provenance scopes in first-seen order.
func (g *Graph) ScopeList() []string {
	seen := make(map[string]bool)
	var out []string
	for _, n := range g.Nodes {
		if !seen[n.Prov.Scope] {
			seen[n.Prov.Scope] = true
			out = append(out, n.Prov.Scope)
		}
	}
	sort.Strings(out)
	return out
}
