package graph

import (
	"strings"
	"testing"
	"testing/quick"

	"astra/internal/tensor"
)

// buildTinyModel constructs a small two-GEMM model with a loss, the shape of
// the examples in the paper's §4.4.1 (two mm sharing a common argument).
func buildTinyModel() (*Graph, *Builder) {
	g := New()
	b := NewBuilder(g)
	rng := tensor.NewRNG(1)
	x := g.Input("x", 4, 8)
	targets := g.Input("targets", 4, 1)
	w1 := g.Param("w1", tensor.Randn(rng, 0.1, 8, 16))
	w2 := g.Param("w2", tensor.Randn(rng, 0.1, 8, 16))
	bias := g.Param("b", tensor.Randn(rng, 0.1, 1, 16))
	var logits *Value
	b.InScope("layer0", func() {
		h1 := b.MatMul(x, w1)
		h2 := b.MatMul(x, w2)
		h := b.Add(h1, h2)
		h = b.AddBias(h, bias)
		h = b.Tanh(h)
		w3 := g.Param("w3", tensor.Randn(rng, 0.1, 16, 5))
		logits = b.MatMul(h, w3)
	})
	b.CrossEntropy(logits, targets)
	return g, b
}

func tinyInputs(g *Graph) Env {
	rng := tensor.NewRNG(2)
	env := Env{}
	for _, in := range g.Inputs {
		switch in.Name {
		case "x":
			env[in] = tensor.Randn(rng, 1, in.Shape...)
		case "targets":
			t := tensor.New(in.Shape...)
			for i := range t.Data() {
				t.Data()[i] = float64(i % 5)
			}
			env[in] = t
		}
	}
	return env
}

func TestBuildAndValidate(t *testing.T) {
	g, _ := buildTinyModel()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Loss == nil {
		t.Fatal("loss not set")
	}
	st := g.Stats()
	if st.MatMuls != 3 {
		t.Fatalf("MatMuls = %d, want 3", st.MatMuls)
	}
	if st.Nodes != 7 {
		t.Fatalf("Nodes = %d, want 7", st.Nodes)
	}
	if len(g.Params) != 4 {
		t.Fatalf("Params = %d", len(g.Params))
	}
}

func TestProvenanceScopes(t *testing.T) {
	g, _ := buildTinyModel()
	for _, n := range g.Nodes {
		if n.Op == OpMatMul && n.Prov.Scope != "layer0" {
			t.Fatalf("mm scope = %q", n.Prov.Scope)
		}
	}
	if got := g.ScopeList(); len(got) != 2 { // "" (loss) and "layer0"
		t.Fatalf("ScopeList = %v", got)
	}
}

func TestNestedScopesAndSteps(t *testing.T) {
	g := New()
	b := NewBuilder(g)
	x := g.Input("x", 2, 2)
	var inner Provenance
	b.InScope("enc", func() {
		b.InScope("lstm1", func() {
			b.AtStep(7, func() {
				b.Add(x, x)
				inner = b.Prov()
			})
		})
	})
	if inner.Scope != "enc.lstm1" || inner.Timestep != 7 {
		t.Fatalf("prov = %+v", inner)
	}
	if b.Prov().Scope != "" || b.Prov().Timestep != -1 {
		t.Fatalf("provenance not restored: %+v", b.Prov())
	}
}

func TestRunComputesLoss(t *testing.T) {
	g, _ := buildTinyModel()
	env := g.Run(tinyInputs(g), nil)
	loss := env[g.Loss].Data()[0]
	if loss <= 0 || loss > 10 {
		t.Fatalf("loss = %v", loss)
	}
}

func TestRunDeterministic(t *testing.T) {
	g, _ := buildTinyModel()
	in := tinyInputs(g)
	a := g.Run(in, nil)
	b := g.Run(in, nil)
	if tensor.MaxAbsDiff(a[g.Loss], b[g.Loss]) != 0 {
		t.Fatal("Run is nondeterministic")
	}
}

func TestRunWithUpdatedParams(t *testing.T) {
	g, _ := buildTinyModel()
	in := tinyInputs(g)
	base := g.Run(in, nil)[g.Loss].Data()[0]
	params := g.InitialParams()
	for _, p := range g.Params {
		if p.Name == "w3" {
			params[p] = tensor.New(p.Shape...).Fill(0.5)
		}
	}
	changed := g.Run(in, params)[g.Loss].Data()[0]
	if base == changed {
		t.Fatal("updated params had no effect")
	}
}

func TestFlopsMatMul(t *testing.T) {
	g, _ := buildTinyModel()
	for _, n := range g.MatMulNodes() {
		m := int64(n.Inputs[0].Shape.Rows())
		k := int64(n.Inputs[0].Shape.Cols())
		nn := int64(n.Inputs[1].Shape.Cols())
		if n.Flops() != 2*m*k*nn {
			t.Fatalf("Flops = %d", n.Flops())
		}
	}
	if g.TotalFlops() <= 0 {
		t.Fatal("TotalFlops <= 0")
	}
}

func TestConsumersAndNodeByOutput(t *testing.T) {
	g, _ := buildTinyModel()
	cons := g.Consumers()
	x := g.Inputs[0]
	if len(cons[x]) != 2 {
		t.Fatalf("x consumers = %d, want 2 (two GEMMs)", len(cons[x]))
	}
	byOut := g.NodeByOutput()
	for _, n := range g.Nodes {
		if byOut[n.Out] != n {
			t.Fatal("NodeByOutput mismatch")
		}
	}
}

func TestValidateCatchesUseBeforeDef(t *testing.T) {
	g := New()
	v := g.NewValue(tensor.Shape{2, 2}, "floating")
	n := &Node{Op: OpTanh, Inputs: []*Value{v}, Out: g.NewValue(tensor.Shape{2, 2}, "")}
	g.Nodes = append(g.Nodes, n)
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted use-before-def")
	}
}

func TestValidateCatchesShapeLie(t *testing.T) {
	g := New()
	b := NewBuilder(g)
	x := g.Input("x", 2, 3)
	y := b.Tanh(x)
	y.Shape = tensor.Shape{9, 9}
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted corrupted shape")
	}
}

func TestShapeInferencePanicsOnMisuse(t *testing.T) {
	g := New()
	b := NewBuilder(g)
	x := g.Input("x", 2, 3)
	y := g.Input("y", 4, 5)
	cases := []func(){
		func() { b.MatMul(x, y) },
		func() { b.Add(x, y) },
		func() { b.AddBias(x, y) },
		func() { b.SliceCols(x, 2, 9) },
		func() { b.ConcatCols(x, y) },
		func() { b.ConcatRows(x, y) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestOpStringRoundTrip(t *testing.T) {
	for op := OpInput; op < opCount; op++ {
		got, ok := OpFromString(op.String())
		if !ok || got != op {
			t.Fatalf("op %d does not round-trip via %q", op, op.String())
		}
	}
	if _, ok := OpFromString("definitely_not_an_op"); ok {
		t.Fatal("bogus op accepted")
	}
}

func TestIsElementwise(t *testing.T) {
	if !OpAdd.IsElementwise() || !OpSigmoidGrad.IsElementwise() {
		t.Fatal("expected elementwise")
	}
	if OpMatMul.IsElementwise() || OpSoftmax.IsElementwise() || OpConcatCols.IsElementwise() {
		t.Fatal("unexpected elementwise")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	g, _ := buildTinyModel()
	txt := g.TraceString()
	g2, err := ParseTrace(strings.NewReader(txt))
	if err != nil {
		t.Fatalf("ParseTrace: %v\n%s", err, txt)
	}
	if g2.TraceString() != txt {
		t.Fatalf("trace not idempotent:\n--- first\n%s\n--- second\n%s", txt, g2.TraceString())
	}
	if len(g2.Nodes) != len(g.Nodes) || len(g2.Params) != len(g.Params) {
		t.Fatal("structure lost in round trip")
	}
	for i, n := range g2.Nodes {
		if n.Op != g.Nodes[i].Op || n.Prov != g.Nodes[i].Prov {
			t.Fatalf("node %d mismatch: %v vs %v", i, n, g.Nodes[i])
		}
	}
}

func TestTraceRoundTripAttrs(t *testing.T) {
	g := New()
	b := NewBuilder(g)
	x := g.Input("x", 2, 6)
	ids := g.Input("ids", 3, 1)
	table := g.Param("emb", tensor.New(10, 4))
	b.Scale(x, 2.5)
	b.SliceCols(x, 1, 4)
	e := b.Lookup(table, ids)
	g.AddNode(OpLookupGrad, b.Prov(), Attr{N: 10}, ids, e)
	txt := g.TraceString()
	g2, err := ParseTrace(strings.NewReader(txt))
	if err != nil {
		t.Fatalf("ParseTrace: %v\n%s", err, txt)
	}
	if g2.Nodes[0].Attr.Scalar != 2.5 {
		t.Fatalf("scalar attr = %v", g2.Nodes[0].Attr.Scalar)
	}
	if g2.Nodes[1].Attr.Lo != 1 || g2.Nodes[1].Attr.Hi != 4 {
		t.Fatalf("slice attrs = %+v", g2.Nodes[1].Attr)
	}
	if g2.Nodes[3].Attr.N != 10 {
		t.Fatalf("lookup_grad attr = %+v", g2.Nodes[3].Attr)
	}
}

func TestTraceRejectsGarbage(t *testing.T) {
	bad := []string{
		"%0 = mm(%1, %2)",            // undefined inputs
		"garbage line",               // unknown form
		"input %0 \"x\" shape=[2xQ]", // bad shape
		"%0 = frobnicate(%1)",        // unknown op
		"input %0 \"x\" shape=[2x2]\ninput %0 \"y\" shape=[2x2]", // redefined
	}
	for _, s := range bad {
		if _, err := ParseTrace(strings.NewReader(s)); err == nil {
			t.Fatalf("ParseTrace accepted %q", s)
		}
	}
}

func TestTraceParsedGraphRuns(t *testing.T) {
	// A parsed trace must be executable: zero-filled params, same inputs.
	g, _ := buildTinyModel()
	g2, err := ParseTrace(strings.NewReader(g.TraceString()))
	if err != nil {
		t.Fatal(err)
	}
	in := Env{}
	for _, v := range g2.Inputs {
		if v.Name == "targets" {
			tt := tensor.New(v.Shape...)
			in[v] = tt
		} else {
			in[v] = tensor.New(v.Shape...).Fill(0.5)
		}
	}
	env := g2.Run(in, nil)
	if env[g2.Loss] == nil {
		t.Fatal("parsed graph did not produce a loss")
	}
}

// TestTraceRoundTripProperty fuzzes random small graphs through the trace
// printer and parser.
func TestTraceRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed | 1)
		g := New()
		b := NewBuilder(g)
		vals := []*Value{g.Input("x", 2+rng.Intn(3), 4)}
		for i := 0; i < 2+rng.Intn(3); i++ {
			vals = append(vals, g.Param("p", tensor.New(vals[0].Shape.Rows(), 4)))
		}
		for i := 0; i < 3+rng.Intn(8); i++ {
			a := vals[rng.Intn(len(vals))]
			c := vals[rng.Intn(len(vals))]
			switch rng.Intn(4) {
			case 0:
				vals = append(vals, b.Add(a, c))
			case 1:
				vals = append(vals, b.Mul(a, c))
			case 2:
				vals = append(vals, b.Tanh(a))
			case 3:
				vals = append(vals, b.Scale(a, rng.Float64()))
			}
		}
		txt := g.TraceString()
		g2, err := ParseTrace(strings.NewReader(txt))
		if err != nil {
			return false
		}
		return g2.TraceString() == txt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEvalGradOps(t *testing.T) {
	g := New()
	b := NewBuilder(g)
	x := g.Input("x", 1, 3)
	gin := g.Input("g", 1, 3)
	y := b.Sigmoid(x)
	sg := g.AddNode(OpSigmoidGrad, b.Prov(), Attr{}, gin, y)
	ty := b.Tanh(x)
	tg := g.AddNode(OpTanhGrad, b.Prov(), Attr{}, gin, ty)
	rg := g.AddNode(OpReLUGrad, b.Prov(), Attr{}, gin, x)
	env := Env{
		x:   tensor.FromSlice([]float64{0, 1, -2}, 1, 3),
		gin: tensor.FromSlice([]float64{1, 1, 1}, 1, 3),
	}
	for _, n := range g.Nodes {
		EvalNode(n, env)
	}
	if got := env[sg].Data()[0]; got != 0.25 {
		t.Fatalf("sigmoid_grad(0) = %v, want 0.25", got)
	}
	if got := env[tg].Data()[0]; got != 1 {
		t.Fatalf("tanh_grad(0) = %v, want 1", got)
	}
	if got := env[rg].Data(); got[0] != 0 || got[1] != 1 || got[2] != 0 {
		t.Fatalf("relu_grad = %v", got)
	}
}

func TestEvalLookupGradScatters(t *testing.T) {
	g := New()
	ids := g.Input("ids", 3, 1)
	gin := g.Input("g", 3, 2)
	out := g.AddNode(OpLookupGrad, Provenance{}, Attr{N: 4}, ids, gin)
	env := Env{
		ids: tensor.FromSlice([]float64{2, 0, 2}, 3, 1),
		gin: tensor.FromSlice([]float64{1, 1, 2, 2, 3, 3}, 3, 2),
	}
	EvalNode(out.Producer, env)
	table := env[out]
	if table.At(2, 0) != 4 || table.At(0, 1) != 2 || table.At(1, 0) != 0 {
		t.Fatalf("lookup_grad = %v", table.Data())
	}
}

func TestBytesEstimate(t *testing.T) {
	g := New()
	b := NewBuilder(g)
	x := g.Input("x", 4, 4)
	y := b.Add(x, x)
	if y.Producer.Bytes() != 8*(16+16+16) {
		t.Fatalf("Bytes = %d", y.Producer.Bytes())
	}
}

func TestEvalPadAndBroadcastOps(t *testing.T) {
	g := New()
	x := g.Input("x", 2, 3)
	padC := g.AddNode(OpPadCols, Provenance{}, Attr{Lo: 1, N: 5}, x)
	padR := g.AddNode(OpPadRows, Provenance{}, Attr{Lo: 1, N: 4}, x)
	col := g.Input("c", 2, 1)
	bc := g.AddNode(OpBroadcastCols, Provenance{}, Attr{N: 3}, col)
	rs := g.AddNode(OpRowSums, Provenance{}, Attr{}, x)
	sc := g.AddNode(OpScaleCols, Provenance{}, Attr{}, x, col)
	row := g.Input("r", 1, 3)
	br := g.AddNode(OpBroadcastRows, Provenance{}, Attr{N: 2}, row)
	sm := g.AddNode(OpSoftmax, Provenance{}, Attr{}, x)
	smg := g.AddNode(OpSoftmaxGrad, Provenance{}, Attr{}, x, sm)

	env := Env{
		x:   tensor.FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3),
		col: tensor.FromSlice([]float64{2, 3}, 2, 1),
		row: tensor.FromSlice([]float64{7, 8, 9}, 1, 3),
	}
	for _, n := range g.Nodes {
		EvalNode(n, env)
	}
	if got := env[padC]; got.At(0, 0) != 0 || got.At(0, 1) != 1 || got.At(0, 4) != 0 {
		t.Fatalf("pad_cols = %v", got.Data())
	}
	if got := env[padR]; got.At(0, 0) != 0 || got.At(1, 0) != 1 || got.At(3, 2) != 0 {
		t.Fatalf("pad_rows = %v", got.Data())
	}
	if got := env[bc]; got.At(0, 2) != 2 || got.At(1, 0) != 3 {
		t.Fatalf("broadcast_cols = %v", got.Data())
	}
	if got := env[rs]; got.At(0, 0) != 6 || got.At(1, 0) != 15 {
		t.Fatalf("row_sums = %v", got.Data())
	}
	if got := env[sc]; got.At(0, 0) != 2 || got.At(1, 2) != 18 {
		t.Fatalf("scale_cols = %v", got.Data())
	}
	if got := env[br]; got.At(1, 2) != 9 {
		t.Fatalf("broadcast_rows = %v", got.Data())
	}
	// softmax_grad of a constant upstream gradient is ~0 per row
	// (softmax is shift-invariant): g=x here, so just sanity-check shape.
	if !env[smg].Shape().Equal(tensor.Shape{2, 3}) {
		t.Fatalf("softmax_grad shape %v", env[smg].Shape())
	}
}

func TestEvalUnboundInputPanics(t *testing.T) {
	g := New()
	b := NewBuilder(g)
	x := g.Input("x", 1, 1)
	y := b.Tanh(x)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EvalNode(y.Producer, Env{})
}

func TestRunUnboundInputPanics(t *testing.T) {
	g := New()
	g.Input("x", 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Run(Env{}, nil)
}

func TestTraceParserEdgeCases(t *testing.T) {
	bad := []string{
		"loss %0", // undefined loss ref is tolerated? keep parse strictness honest
		"input %0 \"x\" shape=[2x2]\n%1 = mm(%0)",          // wrong arity
		"input %0 \"x\" shape=[2x2]\n%1 = scale(%0) {s=z}", // bad attr value
		"input %0 \"x\" shape=[2x2]\n%1 = tanh(%0 garbage", // malformed rhs
		"grad %0 %1", // undefined grad refs resolve to nil: parse ok but Validate fails? ensure no crash
	}
	for i, s := range bad {
		func() {
			defer func() { recover() }() // arity errors panic through inferShape
			_, _ = ParseTrace(strings.NewReader(s))
			_ = i
		}()
	}
}

func TestTraceQuotedScopeRoundTrip(t *testing.T) {
	g := New()
	b := NewBuilder(g)
	x := g.Input("x", 2, 2)
	b.InScope("enc oder.with space", func() {
		b.Tanh(x)
	})
	txt := g.TraceString()
	g2, err := ParseTrace(strings.NewReader(txt))
	if err != nil {
		t.Fatal(err)
	}
	if g2.Nodes[0].Prov.Scope != "enc oder.with space" {
		t.Fatalf("scope = %q", g2.Nodes[0].Prov.Scope)
	}
}

func TestStatsAndScopeList(t *testing.T) {
	g, _ := buildTinyModel()
	st := g.Stats()
	if st.Elementwise == 0 || st.Values == 0 || st.TotalFlops == 0 {
		t.Fatalf("stats = %+v", st)
	}
	scopes := g.ScopeList()
	if len(scopes) == 0 {
		t.Fatal("no scopes")
	}
}

func TestPassString(t *testing.T) {
	if Forward.String() != "fwd" || Backward.String() != "bwd" {
		t.Fatal("pass names")
	}
}

func TestOpStringUnknown(t *testing.T) {
	if Op(9999).String() == "" {
		t.Fatal("unknown op should still render")
	}
}
