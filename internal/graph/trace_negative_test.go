package graph

import (
	"strings"
	"testing"
)

// TestParseTraceRejectsMalformedGraphs exercises the loader's negative
// paths: structurally broken traces must come back as errors, never as
// panics or silently-wrong graphs. This mirrors the FuzzIndexLoad
// convention for the profile index — hostile input is a return value, not
// a crash.
func TestParseTraceRejectsMalformedGraphs(t *testing.T) {
	const header = "# astra trace v1\n"
	cases := []struct {
		name  string
		trace string
		want  string // substring expected in the error
	}{
		{
			name: "self-cycle",
			trace: header +
				"input %0 \"x\" shape=[2x2]\n" +
				"%1 = add(%1, %0) # pass=fwd scope=\"\" t=-1 shape=[2x2]\n",
			want: "undefined",
		},
		{
			name: "forward-reference-cycle",
			trace: header +
				"input %0 \"x\" shape=[2x2]\n" +
				"%1 = add(%2, %0) # pass=fwd scope=\"\" t=-1 shape=[2x2]\n" +
				"%2 = add(%1, %0) # pass=fwd scope=\"\" t=-1 shape=[2x2]\n",
			want: "undefined",
		},
		{
			name: "double-defined-node",
			trace: header +
				"input %0 \"x\" shape=[2x2]\n" +
				"%1 = relu(%0) # pass=fwd scope=\"\" t=-1 shape=[2x2]\n" +
				"%1 = tanh(%0) # pass=fwd scope=\"\" t=-1 shape=[2x2]\n",
			want: "redefined",
		},
		{
			name: "double-defined-leaf",
			trace: header +
				"input %0 \"x\" shape=[2x2]\n" +
				"param %0 \"w\" shape=[2x2]\n",
			want: "redefined",
		},
		{
			name: "shape-mismatch",
			trace: header +
				"input %0 \"x\" shape=[2x3]\n" +
				"param %1 \"w\" shape=[4x5]\n" +
				"%2 = mm(%0, %1) # pass=fwd scope=\"\" t=-1 shape=[2x5]\n",
			want: "mm",
		},
		{
			name: "bad-arity",
			trace: header +
				"input %0 \"x\" shape=[2x2]\n" +
				"%1 = mm(%0) # pass=fwd scope=\"\" t=-1 shape=[2x2]\n",
			want: "",
		},
		{
			name: "loss-undefined",
			trace: header +
				"input %0 \"x\" shape=[2x2]\n" +
				"loss %7\n",
			want: "undefined",
		},
		{
			name: "grad-undefined",
			trace: header +
				"param %0 \"w\" shape=[2x2]\n" +
				"grad %0 %9\n",
			want: "undefined",
		},
		{
			name: "unknown-op",
			trace: header +
				"input %0 \"x\" shape=[2x2]\n" +
				"%1 = frobnicate(%0) # pass=fwd scope=\"\" t=-1 shape=[2x2]\n",
			want: "unknown op",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := ParseTrace(strings.NewReader(tc.trace))
			if err == nil {
				t.Fatalf("ParseTrace accepted a malformed trace (graph: %v)", g)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
