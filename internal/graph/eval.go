package graph

import (
	"fmt"

	"astra/internal/tensor"
)

// Env binds values to concrete tensors during execution.
type Env map[*Value]*tensor.Tensor

// EvalNode computes a single node given its inputs from env and stores the
// result in env. It defines the value semantics of every operator; all
// dispatchers (native, XLA, cuDNN, Astra) share it, which is what makes
// the value-preservation tests meaningful.
func EvalNode(n *Node, env Env) *tensor.Tensor {
	in := make([]*tensor.Tensor, len(n.Inputs))
	for i, v := range n.Inputs {
		t, ok := env[v]
		if !ok {
			panic(fmt.Sprintf("graph: eval %s with unbound input %s", n, v))
		}
		in[i] = t
	}
	var out *tensor.Tensor
	switch n.Op {
	case OpMatMul:
		out = tensor.MatMul(in[0], in[1])
	case OpAdd:
		out = tensor.Add(in[0], in[1])
	case OpSub:
		out = tensor.Sub(in[0], in[1])
	case OpMul:
		out = tensor.Mul(in[0], in[1])
	case OpScale:
		out = tensor.Scale(in[0], n.Attr.Scalar)
	case OpSigmoid:
		out = tensor.Sigmoid(in[0])
	case OpTanh:
		out = tensor.Tanh(in[0])
	case OpReLU:
		out = tensor.ReLU(in[0])
	case OpAddBias:
		out = tensor.AddBias(in[0], in[1])
	case OpSoftmax:
		out = tensor.Softmax(in[0])
	case OpConcatCols:
		out = tensor.ConcatCols(in...)
	case OpConcatRows:
		out = tensor.ConcatRows(in...)
	case OpSliceCols:
		out = tensor.SliceCols(in[0], n.Attr.Lo, n.Attr.Hi)
	case OpSliceRows:
		out = tensor.SliceRows(in[0], n.Attr.Lo, n.Attr.Hi)
	case OpTranspose:
		out = tensor.Transpose(in[0])
	case OpLookup:
		out = tensor.Lookup(in[0], in[1])
	case OpCrossEntropy:
		out = tensor.CrossEntropy(in[0], in[1])
	case OpSumRows:
		out = tensor.SumRows(in[0])
	case OpSigmoidGrad:
		// dL/dx = g ⊙ y ⊙ (1−y), where y = sigmoid(x) (input 1).
		y := in[1]
		out = tensor.New(y.Shape()...)
		g, yd, od := in[0].Data(), y.Data(), out.Data()
		for i := range od {
			od[i] = g[i] * yd[i] * (1 - yd[i])
		}
	case OpTanhGrad:
		// dL/dx = g ⊙ (1−y²), where y = tanh(x) (input 1).
		y := in[1]
		out = tensor.New(y.Shape()...)
		g, yd, od := in[0].Data(), y.Data(), out.Data()
		for i := range od {
			od[i] = g[i] * (1 - yd[i]*yd[i])
		}
	case OpReLUGrad:
		// dL/dx = g where x>0, else 0 (input 1 is the pre-activation x).
		x := in[1]
		out = tensor.New(x.Shape()...)
		g, xd, od := in[0].Data(), x.Data(), out.Data()
		for i := range od {
			if xd[i] > 0 {
				od[i] = g[i]
			}
		}
	case OpCrossEntropyGrad:
		// d(mean NLL)/dlogits = (softmax(logits) − onehot(targets)) / m.
		logits, targets := in[0], in[1]
		out = tensor.Softmax(logits)
		m := logits.Shape().Rows()
		cols := logits.Shape().Cols()
		od := out.Data()
		for i := 0; i < m; i++ {
			od[i*cols+int(targets.Data()[i])] -= 1
		}
		for i := range od {
			od[i] /= float64(m)
		}
	case OpLookupGrad:
		// Scatter-add of row gradients back into the embedding table.
		ids, g := in[0], in[1]
		cols := g.Shape().Cols()
		out = tensor.New(n.Attr.N, cols)
		od := out.Data()
		for i := 0; i < ids.NumElements(); i++ {
			row := int(ids.Data()[i])
			for j := 0; j < cols; j++ {
				od[row*cols+j] += g.Data()[i*cols+j]
			}
		}
	case OpSoftmaxGrad:
		// dL/dx = y ⊙ (g − rowsum(g ⊙ y)) for y = softmax(x) (input 1).
		g, y := in[0], in[1]
		m, cols := y.Shape().Rows(), y.Shape().Cols()
		out = tensor.New(m, cols)
		gd, yd, od := g.Data(), y.Data(), out.Data()
		for i := 0; i < m; i++ {
			dot := 0.0
			for j := 0; j < cols; j++ {
				dot += gd[i*cols+j] * yd[i*cols+j]
			}
			for j := 0; j < cols; j++ {
				od[i*cols+j] = yd[i*cols+j] * (gd[i*cols+j] - dot)
			}
		}
	case OpPadCols:
		src := in[0]
		m, w := src.Shape().Rows(), src.Shape().Cols()
		out = tensor.New(m, n.Attr.N)
		for i := 0; i < m; i++ {
			copy(out.Data()[i*n.Attr.N+n.Attr.Lo:i*n.Attr.N+n.Attr.Lo+w], src.Data()[i*w:(i+1)*w])
		}
	case OpPadRows:
		src := in[0]
		cols := src.Shape().Cols()
		out = tensor.New(n.Attr.N, cols)
		copy(out.Data()[n.Attr.Lo*cols:], src.Data())
	case OpBroadcastRows:
		src := in[0]
		cols := src.Shape().Cols()
		out = tensor.New(n.Attr.N, cols)
		for i := 0; i < n.Attr.N; i++ {
			copy(out.Data()[i*cols:(i+1)*cols], src.Data())
		}
	case OpScaleCols:
		// out[i,j] = x[i,j] * s[i,0] — the per-row attention weighting.
		x, s := in[0], in[1]
		m, cols := x.Shape().Rows(), x.Shape().Cols()
		out = tensor.New(m, cols)
		for i := 0; i < m; i++ {
			w := s.Data()[i]
			for j := 0; j < cols; j++ {
				out.Data()[i*cols+j] = x.Data()[i*cols+j] * w
			}
		}
	case OpRowSums:
		x := in[0]
		m, cols := x.Shape().Rows(), x.Shape().Cols()
		out = tensor.New(m, 1)
		for i := 0; i < m; i++ {
			s := 0.0
			for j := 0; j < cols; j++ {
				s += x.Data()[i*cols+j]
			}
			out.Data()[i] = s
		}
	case OpBroadcastCols:
		x := in[0]
		m := x.Shape().Rows()
		out = tensor.New(m, n.Attr.N)
		for i := 0; i < m; i++ {
			v := x.Data()[i]
			for j := 0; j < n.Attr.N; j++ {
				out.Data()[i*n.Attr.N+j] = v
			}
		}
	default:
		panic(fmt.Sprintf("graph: eval unsupported op %v", n.Op))
	}
	env[n.Out] = out
	return out
}

// Run executes the whole graph in emission order. inputs must bind every
// graph input; parameters and constants are taken from params if bound
// there, else from their declared initial values. It returns the
// environment holding every computed value.
func (g *Graph) Run(inputs Env, params Env) Env {
	env := make(Env, len(g.Values))
	for _, v := range g.Inputs {
		t, ok := inputs[v]
		if !ok {
			panic(fmt.Sprintf("graph: run with unbound input %s (%s)", v, v.Name))
		}
		env[v] = t
	}
	for _, v := range g.Values {
		if v.ConstData == nil {
			continue
		}
		if params != nil {
			if t, ok := params[v]; ok {
				env[v] = t
				continue
			}
		}
		env[v] = v.ConstData
	}
	for _, n := range g.Nodes {
		EvalNode(n, env)
	}
	return env
}

// InitialParams returns a fresh binding of every parameter to a copy of its
// initial value, suitable for a training session that updates weights.
func (g *Graph) InitialParams() Env {
	env := make(Env, len(g.Params))
	for _, p := range g.Params {
		env[p] = p.ConstData.Clone()
	}
	return env
}
