package graph

// Builder provides a scoped, fluent API for emitting graph nodes. Model
// code pushes scopes ("encoder", "lstm0", …) and timesteps; every node
// emitted inherits the current provenance, which is what the enumerator
// later keys fusion candidates and equivalence classes on.
type Builder struct {
	G    *Graph
	prov Provenance
}

// NewBuilder wraps a graph with a forward-pass builder positioned at the
// root scope.
func NewBuilder(g *Graph) *Builder {
	return &Builder{G: g, prov: Provenance{Scope: "", Timestep: -1, Pass: Forward}}
}

// Prov returns the current provenance.
func (b *Builder) Prov() Provenance { return b.prov }

// InScope runs fn with the given scope segment appended, restoring the
// previous provenance afterwards.
func (b *Builder) InScope(scope string, fn func()) {
	old := b.prov
	if b.prov.Scope == "" {
		b.prov.Scope = scope
	} else {
		b.prov.Scope = b.prov.Scope + "." + scope
	}
	fn()
	b.prov = old
}

// AtStep runs fn with the timestep set, restoring it afterwards.
func (b *Builder) AtStep(t int, fn func()) {
	old := b.prov.Timestep
	b.prov.Timestep = t
	fn()
	b.prov.Timestep = old
}

// MatMul emits a GEMM node.
func (b *Builder) MatMul(a, c *Value) *Value {
	return b.G.AddNode(OpMatMul, b.prov, Attr{}, a, c)
}

// Add emits an elementwise addition.
func (b *Builder) Add(x, y *Value) *Value { return b.G.AddNode(OpAdd, b.prov, Attr{}, x, y) }

// Sub emits an elementwise subtraction.
func (b *Builder) Sub(x, y *Value) *Value { return b.G.AddNode(OpSub, b.prov, Attr{}, x, y) }

// Mul emits an elementwise (Hadamard) product.
func (b *Builder) Mul(x, y *Value) *Value { return b.G.AddNode(OpMul, b.prov, Attr{}, x, y) }

// Scale emits multiplication by a compile-time scalar.
func (b *Builder) Scale(x *Value, s float64) *Value {
	return b.G.AddNode(OpScale, b.prov, Attr{Scalar: s}, x)
}

// Sigmoid emits the logistic non-linearity.
func (b *Builder) Sigmoid(x *Value) *Value { return b.G.AddNode(OpSigmoid, b.prov, Attr{}, x) }

// Tanh emits the tanh non-linearity.
func (b *Builder) Tanh(x *Value) *Value { return b.G.AddNode(OpTanh, b.prov, Attr{}, x) }

// ReLU emits the rectifier non-linearity.
func (b *Builder) ReLU(x *Value) *Value { return b.G.AddNode(OpReLU, b.prov, Attr{}, x) }

// AddBias emits a broadcast row-bias addition.
func (b *Builder) AddBias(x, bias *Value) *Value {
	return b.G.AddNode(OpAddBias, b.prov, Attr{}, x, bias)
}

// Softmax emits a row-wise softmax.
func (b *Builder) Softmax(x *Value) *Value { return b.G.AddNode(OpSoftmax, b.prov, Attr{}, x) }

// ConcatCols emits a column-wise concatenation.
func (b *Builder) ConcatCols(xs ...*Value) *Value {
	return b.G.AddNode(OpConcatCols, b.prov, Attr{}, xs...)
}

// ConcatRows emits a row-wise concatenation.
func (b *Builder) ConcatRows(xs ...*Value) *Value {
	return b.G.AddNode(OpConcatRows, b.prov, Attr{}, xs...)
}

// SliceCols emits extraction of columns [lo, hi).
func (b *Builder) SliceCols(x *Value, lo, hi int) *Value {
	return b.G.AddNode(OpSliceCols, b.prov, Attr{Lo: lo, Hi: hi}, x)
}

// SliceRows emits extraction of rows [lo, hi).
func (b *Builder) SliceRows(x *Value, lo, hi int) *Value {
	return b.G.AddNode(OpSliceRows, b.prov, Attr{Lo: lo, Hi: hi}, x)
}

// Transpose emits a matrix transpose.
func (b *Builder) Transpose(x *Value) *Value { return b.G.AddNode(OpTranspose, b.prov, Attr{}, x) }

// Lookup emits an embedding-table gather.
func (b *Builder) Lookup(table, ids *Value) *Value {
	return b.G.AddNode(OpLookup, b.prov, Attr{}, table, ids)
}

// ScaleCols emits out[i,j] = x[i,j] * s[i,0]: per-row scaling by a column
// vector, the attention-weighting primitive.
func (b *Builder) ScaleCols(x, s *Value) *Value {
	return b.G.AddNode(OpScaleCols, b.prov, Attr{}, x, s)
}

// RowSums emits the [m,1] column of per-row sums.
func (b *Builder) RowSums(x *Value) *Value { return b.G.AddNode(OpRowSums, b.prov, Attr{}, x) }

// BroadcastCols emits replication of a [m,1] column across n columns.
func (b *Builder) BroadcastCols(x *Value, n int) *Value {
	return b.G.AddNode(OpBroadcastCols, b.prov, Attr{N: n}, x)
}

// CrossEntropy emits the fused softmax + mean NLL loss and marks it as the
// graph's loss output.
func (b *Builder) CrossEntropy(logits, targets *Value) *Value {
	v := b.G.AddNode(OpCrossEntropy, b.prov, Attr{}, logits, targets)
	b.G.Loss = v
	return v
}
