package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"astra/internal/tensor"
)

// Trace serialises the graph in a textual format modelled on the PyTorch
// trace excerpts in the paper (`%10 = mm(%1, %5)`), extended with shape and
// provenance annotations so it round-trips. cmd/astra-trace dumps it and
// ParseTrace reads it back; it is also a convenient diff surface for tests.
func (g *Graph) Trace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# astra trace v1")
	for _, v := range g.Inputs {
		fmt.Fprintf(bw, "input %s %q shape=%s\n", v, v.Name, shapeStr(v.Shape))
	}
	for _, v := range g.Params {
		fmt.Fprintf(bw, "param %s %q shape=%s\n", v, v.Name, shapeStr(v.Shape))
	}
	for _, v := range g.Values {
		if v.ConstData != nil && v.Producer == nil && !contains(g.Params, v) {
			fmt.Fprintf(bw, "const %s %q shape=%s\n", v, v.Name, shapeStr(v.Shape))
		}
	}
	for _, n := range g.Nodes {
		fmt.Fprintf(bw, "%s = %s(", n.Out, n.Op)
		for i, in := range n.Inputs {
			if i > 0 {
				fmt.Fprint(bw, ", ")
			}
			fmt.Fprint(bw, in)
		}
		fmt.Fprint(bw, ")")
		if attrs := attrString(n); attrs != "" {
			fmt.Fprintf(bw, " {%s}", attrs)
		}
		fmt.Fprintf(bw, " # pass=%s scope=%q t=%d shape=%s\n",
			n.Prov.Pass, n.Prov.Scope, n.Prov.Timestep, shapeStr(n.Out.Shape))
	}
	if g.Loss != nil {
		fmt.Fprintf(bw, "loss %s\n", g.Loss)
	}
	for _, p := range g.Params {
		if gv, ok := g.Grads[p]; ok {
			fmt.Fprintf(bw, "grad %s %s\n", p, gv)
		}
	}
	return bw.Flush()
}

func contains(vs []*Value, v *Value) bool {
	for _, x := range vs {
		if x == v {
			return true
		}
	}
	return false
}

func shapeStr(s tensor.Shape) string {
	parts := make([]string, len(s))
	for i, d := range s {
		parts[i] = strconv.Itoa(d)
	}
	return "[" + strings.Join(parts, "x") + "]"
}

func parseShape(s string) (tensor.Shape, error) {
	s = strings.TrimPrefix(strings.TrimSuffix(s, "]"), "[")
	if s == "" {
		return tensor.Shape{}, nil
	}
	parts := strings.Split(s, "x")
	out := make(tensor.Shape, len(parts))
	for i, p := range parts {
		d, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("graph: bad shape dim %q", p)
		}
		out[i] = d
	}
	return out, nil
}

func attrString(n *Node) string {
	switch n.Op {
	case OpScale:
		return fmt.Sprintf("s=%g", n.Attr.Scalar)
	case OpSliceCols, OpSliceRows:
		return fmt.Sprintf("lo=%d hi=%d", n.Attr.Lo, n.Attr.Hi)
	case OpLookupGrad, OpBroadcastRows, OpBroadcastCols:
		return fmt.Sprintf("n=%d", n.Attr.N)
	case OpPadCols, OpPadRows:
		return fmt.Sprintf("lo=%d n=%d", n.Attr.Lo, n.Attr.N)
	}
	return ""
}

// TraceString renders the trace to a string.
func (g *Graph) TraceString() string {
	var b strings.Builder
	if err := g.Trace(&b); err != nil {
		panic(err) // strings.Builder never errors
	}
	return b.String()
}

// ParseTrace reconstructs a graph from the textual trace format. Parameter
// and constant tensors are re-created zero-filled (the trace carries shapes,
// not weights); callers that need values must rebind them.
func ParseTrace(r io.Reader) (*Graph, error) {
	g := New()
	byID := make(map[int]*Value)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fail := func(msg string) error { return fmt.Errorf("graph: trace line %d: %s", lineNo, msg) }
		switch {
		case strings.HasPrefix(line, "input "), strings.HasPrefix(line, "param "), strings.HasPrefix(line, "const "):
			kind := line[:5]
			rest := strings.TrimSpace(line[6:])
			fields := splitLeafFields(rest)
			if len(fields) != 3 {
				return nil, fail("malformed leaf declaration")
			}
			id, err := parseValueRef(fields[0])
			if err != nil {
				return nil, fail(err.Error())
			}
			name, err := strconv.Unquote(fields[1])
			if err != nil {
				return nil, fail("bad name: " + err.Error())
			}
			shape, err := parseShape(strings.TrimPrefix(fields[2], "shape="))
			if err != nil {
				return nil, fail(err.Error())
			}
			if byID[id] != nil {
				return nil, fail(fmt.Sprintf("value %%%d redefined", id))
			}
			v := g.addValueWithID(id, shape, name)
			byID[id] = v
			switch kind {
			case "input":
				g.Inputs = append(g.Inputs, v)
			case "param":
				v.ConstData = tensor.New(shape...)
				g.Params = append(g.Params, v)
			case "const":
				v.ConstData = tensor.New(shape...)
			}
		case strings.HasPrefix(line, "loss "):
			id, err := parseValueRef(strings.TrimSpace(line[5:]))
			if err != nil {
				return nil, fail(err.Error())
			}
			if byID[id] == nil {
				return nil, fail(fmt.Sprintf("loss references undefined %%%d", id))
			}
			g.Loss = byID[id]
		case strings.HasPrefix(line, "grad "):
			fields := strings.Fields(line[5:])
			if len(fields) != 2 {
				return nil, fail("malformed grad line")
			}
			pid, err1 := parseValueRef(fields[0])
			gid, err2 := parseValueRef(fields[1])
			if err1 != nil || err2 != nil {
				return nil, fail("bad grad refs")
			}
			if byID[pid] == nil || byID[gid] == nil {
				return nil, fail("grad references undefined value")
			}
			g.Grads[byID[pid]] = byID[gid]
		case strings.HasPrefix(line, "%"):
			if err := parseNodeLine(g, byID, line); err != nil {
				return nil, fail(err.Error())
			}
		default:
			return nil, fail("unrecognised line")
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return g, g.Validate()
}

// splitLeafFields splits `%0 "name with spaces" shape=[2x3]` into 3 fields,
// respecting the quoted name.
func splitLeafFields(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	// value ref
	i := strings.IndexByte(s, ' ')
	if i < 0 {
		return []string{s}
	}
	out = append(out, s[:i])
	s = strings.TrimSpace(s[i:])
	// quoted name
	if strings.HasPrefix(s, "\"") {
		j := 1
		for j < len(s) && (s[j] != '"' || s[j-1] == '\\') {
			j++
		}
		if j < len(s) {
			out = append(out, s[:j+1])
			s = strings.TrimSpace(s[j+1:])
		}
	}
	if s != "" {
		out = append(out, s)
	}
	return out
}

func parseValueRef(s string) (int, error) {
	if !strings.HasPrefix(s, "%") {
		return 0, fmt.Errorf("bad value ref %q", s)
	}
	return strconv.Atoi(s[1:])
}

func parseNodeLine(g *Graph, byID map[int]*Value, line string) error {
	// Strip the provenance comment.
	prov := Provenance{Timestep: -1}
	if i := strings.Index(line, " # "); i >= 0 {
		comment := line[i+3:]
		line = line[:i]
		for _, f := range splitCommentFields(comment) {
			switch {
			case strings.HasPrefix(f, "pass="):
				if strings.TrimPrefix(f, "pass=") == "bwd" {
					prov.Pass = Backward
				}
			case strings.HasPrefix(f, "scope="):
				s, err := strconv.Unquote(strings.TrimPrefix(f, "scope="))
				if err != nil {
					return fmt.Errorf("bad scope: %v", err)
				}
				prov.Scope = s
			case strings.HasPrefix(f, "t="):
				t, err := strconv.Atoi(strings.TrimPrefix(f, "t="))
				if err != nil {
					return fmt.Errorf("bad timestep: %v", err)
				}
				prov.Timestep = t
			}
		}
	}
	// Optional attrs in braces.
	var attr Attr
	if i := strings.Index(line, " {"); i >= 0 {
		j := strings.Index(line, "}")
		if j < i {
			return fmt.Errorf("unterminated attr block")
		}
		for _, f := range strings.Fields(line[i+2 : j]) {
			kv := strings.SplitN(f, "=", 2)
			if len(kv) != 2 {
				return fmt.Errorf("bad attr %q", f)
			}
			switch kv[0] {
			case "s":
				v, err := strconv.ParseFloat(kv[1], 64)
				if err != nil {
					return err
				}
				attr.Scalar = v
			case "lo":
				v, err := strconv.Atoi(kv[1])
				if err != nil {
					return err
				}
				attr.Lo = v
			case "hi":
				v, err := strconv.Atoi(kv[1])
				if err != nil {
					return err
				}
				attr.Hi = v
			case "n":
				v, err := strconv.Atoi(kv[1])
				if err != nil {
					return err
				}
				attr.N = v
			}
		}
		line = line[:i]
	}
	eq := strings.Index(line, " = ")
	if eq < 0 {
		return fmt.Errorf("missing '='")
	}
	outID, err := parseValueRef(strings.TrimSpace(line[:eq]))
	if err != nil {
		return err
	}
	rhs := strings.TrimSpace(line[eq+3:])
	open := strings.IndexByte(rhs, '(')
	if open < 0 || !strings.HasSuffix(rhs, ")") {
		return fmt.Errorf("malformed rhs %q", rhs)
	}
	op, ok := OpFromString(rhs[:open])
	if !ok {
		return fmt.Errorf("unknown op %q", rhs[:open])
	}
	var inputs []*Value
	argStr := strings.TrimSpace(rhs[open+1 : len(rhs)-1])
	if argStr != "" {
		for _, a := range strings.Split(argStr, ",") {
			id, err := parseValueRef(strings.TrimSpace(a))
			if err != nil {
				return err
			}
			v, ok := byID[id]
			if !ok {
				return fmt.Errorf("use of undefined %%%d", id)
			}
			inputs = append(inputs, v)
		}
	}
	if byID[outID] != nil {
		return fmt.Errorf("value %%%d redefined", outID)
	}
	out, err := g.addNodeWithOutID(outID, op, prov, attr, inputs...)
	if err != nil {
		return err
	}
	byID[outID] = out
	return nil
}

// splitCommentFields splits the provenance comment respecting the quoted
// scope string.
func splitCommentFields(s string) []string {
	var out []string
	for s != "" {
		s = strings.TrimSpace(s)
		if s == "" {
			break
		}
		if strings.HasPrefix(s, "scope=\"") {
			j := len("scope=\"")
			for j < len(s) && (s[j] != '"' || s[j-1] == '\\') {
				j++
			}
			if j < len(s) {
				out = append(out, s[:j+1])
				s = s[j+1:]
				continue
			}
		}
		i := strings.IndexByte(s, ' ')
		if i < 0 {
			out = append(out, s)
			break
		}
		out = append(out, s[:i])
		s = s[i:]
	}
	return out
}
