package memory

import (
	"testing"
	"testing/quick"

	"astra/internal/graph"
	"astra/internal/tensor"
)

func makeValues(g *graph.Graph, n int) []*graph.Value {
	vs := make([]*graph.Value, n)
	for i := range vs {
		vs[i] = g.NewValue(tensor.Shape{4, 8 + i}, "")
	}
	return vs
}

func TestConflicts(t *testing.T) {
	g := graph.New()
	v := makeValues(g, 4)
	a := Request{ID: "a", Values: []*graph.Value{v[0], v[1]}}
	b := Request{ID: "b", Values: []*graph.Value{v[1], v[2]}}
	c := Request{ID: "c", Values: []*graph.Value{v[2], v[3]}}
	if !Conflicts(a, b) {
		t.Fatal("a/b share v1, should conflict")
	}
	if Conflicts(a, c) {
		t.Fatal("a/c are disjoint, no conflict")
	}
	if Conflicts(a, Request{ID: "a2", Values: []*graph.Value{v[0], v[1]}}) {
		t.Fatal("identical requests should not conflict")
	}
}

func TestPlanNoConflictsSingleStrategy(t *testing.T) {
	g := graph.New()
	v := makeValues(g, 6)
	reqs := []Request{
		{ID: "g0", Values: []*graph.Value{v[0], v[1]}},
		{ID: "g1", Values: []*graph.Value{v[2], v[3], v[4]}},
	}
	ss := (&Planner{}).Plan(g.Values, reqs)
	if len(ss) != 1 {
		t.Fatalf("strategies = %d, want 1", len(ss))
	}
	if !ss[0].Contiguous("g0") || !ss[0].Contiguous("g1") {
		t.Fatal("conflict-free requests should all be satisfied")
	}
}

func TestPlanForksOnConflict(t *testing.T) {
	// Figure 1's shape: two fusion groups needing the same tensor in
	// different blocks.
	g := graph.New()
	v := makeValues(g, 4)
	reqs := []Request{
		{ID: "fwd", Values: []*graph.Value{v[0], v[1]}},
		{ID: "bwd", Values: []*graph.Value{v[1], v[2]}},
	}
	ss := (&Planner{}).Plan(g.Values, reqs)
	if len(ss) < 2 {
		t.Fatalf("strategies = %d, want >= 2", len(ss))
	}
	fwdOK, bwdOK := false, false
	for _, s := range ss {
		if s.Contiguous("fwd") {
			fwdOK = true
		}
		if s.Contiguous("bwd") {
			bwdOK = true
		}
		if s.Contiguous("fwd") && s.Contiguous("bwd") {
			t.Fatal("a strategy satisfied conflicting requests")
		}
	}
	if !fwdOK || !bwdOK {
		t.Fatal("every conflicted request should be satisfied by some strategy")
	}
}

func TestPlanBoundsStrategies(t *testing.T) {
	g := graph.New()
	v := makeValues(g, 20)
	// A chain of pairwise conflicts: g_i = {v_i, v_{i+1}}.
	var reqs []Request
	for i := 0; i+1 < len(v); i++ {
		reqs = append(reqs, Request{ID: string(rune('a' + i)), Values: []*graph.Value{v[i], v[i+1]}})
	}
	ss := (&Planner{MaxStrategies: 4}).Plan(g.Values, reqs)
	if len(ss) > 4 {
		t.Fatalf("strategies = %d, exceeds bound 4", len(ss))
	}
	if len(ss) < 2 {
		t.Fatalf("strategies = %d, conflicts should fork", len(ss))
	}
}

func TestLayoutNoOverlapAndContiguity(t *testing.T) {
	g := graph.New()
	v := makeValues(g, 6)
	reqs := []Request{
		{ID: "g0", Values: []*graph.Value{v[4], v[0], v[2]}},
	}
	ss := (&Planner{}).Plan(g.Values, reqs)
	s := ss[0]
	// Satisfied group members are adjacent and in order.
	off0, _ := s.Offset(v[4])
	off1, _ := s.Offset(v[0])
	off2, _ := s.Offset(v[2])
	if off1 != off0+int64(v[4].Shape.NumElements())*8 {
		t.Fatalf("group members not adjacent: %d then %d", off0, off1)
	}
	if off2 != off1+int64(v[0].Shape.NumElements())*8 {
		t.Fatalf("group members not adjacent: %d then %d", off1, off2)
	}
	// No two values overlap.
	type span struct{ lo, hi int64 }
	var spans []span
	for _, val := range g.Values {
		off, ok := s.Offset(val)
		if !ok {
			t.Fatalf("value %s not placed", val)
		}
		spans = append(spans, span{off, off + int64(val.Shape.NumElements())*8})
	}
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			a, b := spans[i], spans[j]
			if a.lo < b.hi && b.lo < a.hi {
				t.Fatalf("overlap: [%d,%d) and [%d,%d)", a.lo, a.hi, b.lo, b.hi)
			}
		}
	}
	if s.ArenaSize() <= 0 {
		t.Fatal("arena size not computed")
	}
}

func TestRequestBytes(t *testing.T) {
	g := graph.New()
	v := makeValues(g, 2) // shapes [4,8] and [4,9]
	r := Request{ID: "r", Values: v}
	if r.Bytes() != (32+36)*8 {
		t.Fatalf("Bytes = %d", r.Bytes())
	}
}

func TestValidateRequests(t *testing.T) {
	g := graph.New()
	v := makeValues(g, 3)
	other := graph.New().NewValue(tensor.Shape{1, 1}, "")
	bad := [][]Request{
		{{ID: "", Values: []*graph.Value{v[0], v[1]}}},
		{{ID: "a", Values: []*graph.Value{v[0]}}},
		{{ID: "a", Values: []*graph.Value{v[0], v[0]}}},
		{{ID: "a", Values: []*graph.Value{v[0], other}}},
		{{ID: "a", Values: []*graph.Value{v[0], v[1]}}, {ID: "a", Values: []*graph.Value{v[1], v[2]}}},
	}
	for i, reqs := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: bad request accepted", i)
				}
			}()
			(&Planner{}).Plan(g.Values, reqs)
		}()
	}
}

// TestPlanProperty: for random request sets, no strategy satisfies two
// conflicting requests, all values are placed without overlap, and at least
// one strategy exists.
func TestPlanProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed | 1)
		g := graph.New()
		v := makeValues(g, 8+rng.Intn(8))
		var reqs []Request
		n := 1 + rng.Intn(6)
		for i := 0; i < n; i++ {
			a, b := rng.Intn(len(v)), rng.Intn(len(v))
			if a == b {
				b = (b + 1) % len(v)
			}
			reqs = append(reqs, Request{ID: string(rune('a' + i)), Values: []*graph.Value{v[a], v[b]}})
		}
		ss := (&Planner{}).Plan(g.Values, reqs)
		if len(ss) == 0 {
			return false
		}
		for _, s := range ss {
			for i := range reqs {
				for j := i + 1; j < len(reqs); j++ {
					if Conflicts(reqs[i], reqs[j]) && s.Contiguous(reqs[i].ID) && s.Contiguous(reqs[j].ID) {
						return false
					}
				}
			}
			ends := map[int64]int64{}
			for _, val := range g.Values {
				off, ok := s.Offset(val)
				if !ok {
					return false
				}
				ends[off] = off + int64(val.Shape.NumElements())*8
			}
			// overlap check via sorted sweep
			prevEnd := int64(-1)
			var starts []int64
			for o := range ends {
				starts = append(starts, o)
			}
			sortInt64(starts)
			for _, o := range starts {
				if o < prevEnd {
					return false
				}
				prevEnd = ends[o]
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func sortInt64(xs []int64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func TestStrategyString(t *testing.T) {
	g := graph.New()
	v := makeValues(g, 2)
	ss := (&Planner{}).Plan(g.Values, []Request{{ID: "grp", Values: v}})
	if got := ss[0].String(); got != "alloc0{grp}" {
		t.Fatalf("String = %q", got)
	}
}
