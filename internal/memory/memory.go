// Package memory models device memory placement for the tensors of a
// training graph. Its job in the Astra pipeline is §4.5.2 of the paper:
// GEMM fusion requires the fused operands to be contiguous in GPU memory,
// different fusion groups sometimes require conflicting placements, and the
// enumerator forks the exploration space over allocation strategies —
// each strategy satisfying a different compatible subset of the
// contiguity requests.
//
// Because the training graph is static, every value gets a persistent
// buffer; a strategy is a complete layout of those buffers in a linear
// arena. A fused kernel whose operands are contiguous under the active
// strategy reads them in place; otherwise the custom-wirer must launch
// gather copies first (kernels.Copy) and the measured schedule pays for it.
package memory

import (
	"fmt"
	"sort"
	"strings"

	"astra/internal/graph"
)

// Request asks that a sequence of values be laid out adjacently, in order.
// One request corresponds to one fusion group's operand list.
type Request struct {
	ID     string
	Values []*graph.Value
}

// Bytes returns the total size of the requested block.
func (r Request) Bytes() int64 {
	var b int64
	for _, v := range r.Values {
		b += int64(v.Shape.NumElements()) * 8
	}
	return b
}

// Conflicts reports whether two requests cannot both be satisfied. Any
// shared value is a conflict unless the requests are identical: a value can
// only have one predecessor and one successor in a linear layout. (The
// paper's cheap static resolution — dropping a single offending tensor from
// one group — happens in the enumerator before requests are issued.)
func Conflicts(a, b Request) bool {
	if sameValues(a, b) {
		return false
	}
	set := make(map[*graph.Value]bool, len(a.Values))
	for _, v := range a.Values {
		set[v] = true
	}
	for _, v := range b.Values {
		if set[v] {
			return true
		}
	}
	return false
}

func sameValues(a, b Request) bool {
	if len(a.Values) != len(b.Values) {
		return false
	}
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			return false
		}
	}
	return true
}

// Strategy is one allocation alternative: the subset of requests laid out
// contiguously, plus a concrete arena placement of every value.
type Strategy struct {
	Name      string
	Satisfied map[string]bool
	offsets   map[*graph.Value]int64
	totalSize int64
}

// Contiguous reports whether the request with the given ID was satisfied.
func (s *Strategy) Contiguous(reqID string) bool { return s.Satisfied[reqID] }

// Offset returns a value's placement; ok is false for values outside the
// graph this strategy was planned for.
func (s *Strategy) Offset(v *graph.Value) (int64, bool) {
	off, ok := s.offsets[v]
	return off, ok
}

// ArenaSize returns the total arena footprint in bytes.
func (s *Strategy) ArenaSize() int64 { return s.totalSize }

// SatisfiedIDs returns the sorted satisfied request IDs (for reports).
func (s *Strategy) SatisfiedIDs() []string {
	ids := make([]string, 0, len(s.Satisfied))
	for id, ok := range s.Satisfied {
		if ok {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// String summarises the strategy.
func (s *Strategy) String() string {
	return fmt.Sprintf("%s{%s}", s.Name, strings.Join(s.SatisfiedIDs(), ","))
}

// ManualStrategy builds a strategy from explicit placements. The planner
// never produces overlapping or misaligned layouts; this constructor exists
// so the verifier's mutation tests can assemble deliberately corrupted
// strategies and prove the aliasing and contiguity analyses detect them.
func ManualStrategy(name string, satisfied []string, offsets map[*graph.Value]int64, totalSize int64) *Strategy {
	s := &Strategy{
		Name:      name,
		Satisfied: make(map[string]bool, len(satisfied)),
		offsets:   make(map[*graph.Value]int64, len(offsets)),
		totalSize: totalSize,
	}
	for _, id := range satisfied {
		s.Satisfied[id] = true
	}
	for v, off := range offsets {
		s.offsets[v] = off
	}
	return s
}

// Planner builds allocation strategies for a graph's contiguity requests.
type Planner struct {
	// MaxStrategies bounds the fork width of the allocation dimension so
	// the exploration state space stays a few thousand configurations
	// (Table 7). Zero means the default of 6.
	MaxStrategies int
}

// Plan enumerates allocation strategies. With no conflicts it returns a
// single strategy satisfying every request. With conflicts it returns up to
// MaxStrategies distinct maximal compatible subsets, each seeded by a
// different conflicted request so that every request is satisfied by at
// least one strategy whenever possible.
func (p *Planner) Plan(values []*graph.Value, requests []Request) []*Strategy {
	max := p.MaxStrategies
	if max <= 0 {
		max = 6
	}
	if err := validateRequests(values, requests); err != nil {
		panic(err)
	}

	conflict := make([][]bool, len(requests))
	anyConflict := false
	for i := range requests {
		conflict[i] = make([]bool, len(requests))
	}
	for i := range requests {
		for j := i + 1; j < len(requests); j++ {
			if Conflicts(requests[i], requests[j]) {
				conflict[i][j], conflict[j][i] = true, true
				anyConflict = true
			}
		}
	}

	var pick func(seed int) []int
	pick = func(seed int) []int {
		// Greedy maximal independent set: take the seed, then remaining
		// requests in descending size (bigger fusion blocks first), skipping
		// anything conflicting with the chosen set.
		order := make([]int, 0, len(requests))
		for i := range requests {
			if i != seed {
				order = append(order, i)
			}
		}
		sort.Slice(order, func(a, b int) bool {
			ra, rb := requests[order[a]], requests[order[b]]
			if len(ra.Values) != len(rb.Values) {
				return len(ra.Values) > len(rb.Values)
			}
			return ra.ID < rb.ID
		})
		chosen := []int{}
		if seed >= 0 {
			chosen = append(chosen, seed)
		}
		for _, cand := range order {
			ok := true
			for _, c := range chosen {
				if conflict[cand][c] {
					ok = false
					break
				}
			}
			if ok {
				chosen = append(chosen, cand)
			}
		}
		sort.Ints(chosen)
		return chosen
	}

	var subsets [][]int
	if !anyConflict {
		subsets = append(subsets, pick(-1))
	} else {
		seen := map[string]bool{}
		addSubset := func(sub []int) {
			key := fmt.Sprint(sub)
			if !seen[key] {
				seen[key] = true
				subsets = append(subsets, sub)
			}
		}
		addSubset(pick(-1)) // the size-greedy default
		for i := range requests {
			conflicted := false
			for j := range requests {
				if conflict[i][j] {
					conflicted = true
					break
				}
			}
			if conflicted {
				addSubset(pick(i))
			}
			if len(subsets) >= max {
				break
			}
		}
	}

	strategies := make([]*Strategy, 0, len(subsets))
	for i, sub := range subsets {
		s := layout(fmt.Sprintf("alloc%d", i), values, requests, sub)
		strategies = append(strategies, s)
	}
	return strategies
}

func validateRequests(values []*graph.Value, requests []Request) error {
	known := make(map[*graph.Value]bool, len(values))
	for _, v := range values {
		known[v] = true
	}
	ids := map[string]bool{}
	for _, r := range requests {
		if r.ID == "" {
			return fmt.Errorf("memory: request with empty ID")
		}
		if ids[r.ID] {
			return fmt.Errorf("memory: duplicate request ID %q", r.ID)
		}
		ids[r.ID] = true
		if len(r.Values) < 2 {
			return fmt.Errorf("memory: request %q with fewer than 2 values", r.ID)
		}
		seen := map[*graph.Value]bool{}
		for _, v := range r.Values {
			if !known[v] {
				return fmt.Errorf("memory: request %q references value outside the graph", r.ID)
			}
			if seen[v] {
				return fmt.Errorf("memory: request %q repeats value %s", r.ID, v)
			}
			seen[v] = true
		}
	}
	return nil
}

// layout places satisfied request blocks first (members adjacent, in
// request order), then every remaining value, at 256-byte alignment —
// cudaMalloc's alignment granularity.
func layout(name string, values []*graph.Value, requests []Request, satisfied []int) *Strategy {
	const align = 256
	s := &Strategy{
		Name:      name,
		Satisfied: make(map[string]bool, len(satisfied)),
		offsets:   make(map[*graph.Value]int64, len(values)),
	}
	placed := make(map[*graph.Value]bool, len(values))
	var off int64
	place := func(v *graph.Value) {
		s.offsets[v] = off
		placed[v] = true
		off += int64(v.Shape.NumElements()) * 8
	}
	for _, idx := range satisfied {
		r := requests[idx]
		s.Satisfied[r.ID] = true
		if placed[r.Values[0]] {
			// An identical request already laid this block out.
			continue
		}
		// Block starts aligned; members are packed back-to-back inside.
		off = (off + align - 1) / align * align
		for _, v := range r.Values {
			place(v)
		}
	}
	for _, v := range values {
		if !placed[v] {
			off = (off + align - 1) / align * align
			place(v)
		}
	}
	s.totalSize = off
	return s
}
